// Package brcu implements Bounded RCU (Algorithm 5 of the paper) together
// with abort-masking (Algorithm 6): an epoch-based RCU whose critical
// sections are forcibly bounded. A reclaimer that fails to advance the
// global epoch ForceThreshold times in a row neutralizes exactly the
// lagging threads, forcing them to roll their critical sections back to the
// beginning, and then advances the epoch anyway.
//
// # Signal substitution
//
// The paper delivers neutralization with POSIX signals (pthread_kill +
// siglongjmp). Go's runtime owns signal handling, and a non-local jump
// across a goroutine's stack is unsound under the garbage collector, so
// this implementation substitutes *cooperative neutralization*:
//
//   - a thread's state lives in one packed status word {phase, epoch};
//   - the reclaimer "sends a signal" by CASing the victim's status from
//     InCs(e) to RbReq(e) — this is the delivery linearization point;
//   - the victim observes RbReq at its next poll point (every traversal
//     step and checkpoint in internal/core) and rolls back by ordinary
//     control flow.
//
// The reclaimer never waits for an acknowledgement, so a stalled thread
// cannot block reclamation — the paper's robustness property is preserved.
// The window in which an already-neutralized victim is still running is
// harmless: Go's GC keeps recycled nodes type-safe, and the framework
// commits results and shared-memory writes only after a successful poll
// (or inside an abort-masked region, whose entry and exit are themselves
// CASes on the status word). See DESIGN.md §2 for the full argument, which
// mirrors Theorem A.4's case analysis with the CAS taking the place of
// signal delivery in Assumption 1.
package brcu

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smrgo/hpbrcu/internal/alloc"
	"github.com/smrgo/hpbrcu/internal/atomicx"
	"github.com/smrgo/hpbrcu/internal/fault"
	"github.com/smrgo/hpbrcu/internal/obs"
	"github.com/smrgo/hpbrcu/internal/registry"
	"github.com/smrgo/hpbrcu/internal/stats"
)

// Thread phases, stored in the low bits of the packed status word
// (Algorithm 5 line 11 and Algorithm 6 line 2).
const (
	// phaseOut: outside any critical section.
	phaseOut uint64 = iota
	// phaseInCs: inside a critical section; may be neutralized.
	phaseInCs
	// phaseInRm: inside an abort-masked region; a neutralization request
	// is deferred until the region exits.
	phaseInRm
	// phaseRbReq: neutralized; the thread must roll back at its next poll
	// (or masked-region exit).
	phaseRbReq
	// phaseQuarantined: the lease reaper suspects the owner goroutine is
	// dead (stale lease, no live critical section) — phase one of the
	// two-phase reap. The owner cancels with a CAS back to Out at its
	// next entry point; the reaper confirms by CASing to Reaping after
	// the grace period. See internal/reap and DESIGN.md §9.
	phaseQuarantined
	// phaseReaping: the reaper is adopting the handle's deferred state.
	// A waking owner spins until phaseReaped before resurrecting.
	phaseReaping
	// phaseReaped: the handle was reaped — removed from the registry,
	// its batch and shields adopted. A waking owner re-registers
	// (resurrects) before continuing.
	phaseReaped
	// phaseInMut: the owner is mutating reaper-adoptable state (the defer
	// batch, the HP retired list) outside any critical section. The phase
	// is un-quarantinable — TryQuarantine refuses it — so an owner
	// descheduled mid-mutation can never be reaped while its batch is in
	// flight; and, being ≥ phaseRbReq, it never blocks an epoch advance
	// (the owner holds no critical section). See BeginMut.
	phaseInMut
)

const phaseBits = 3

func pack(phase, epoch uint64) uint64 { return epoch<<phaseBits | phase }
func unpack(st uint64) (phase, epoch uint64) {
	return st & (1<<phaseBits - 1), st >> phaseBits
}

// Defaults from the paper's evaluation (§6): HP-BRCU flushes (and tries to
// advance the epoch) every 128 retires and forces the advance after two
// successive failures.
const (
	DefaultMaxLocalTasks  = 128
	DefaultForceThreshold = 2
)

// initialBatchCap seeds the geometric growth of per-handle defer batches;
// see Handle.batchCap.
const initialBatchCap = 16

type taggedBatch struct {
	epoch uint64
	// flushed is the obs timestamp of the flush (0 with observability
	// off); the drain records the batch's grace-period length from it.
	flushed int64
	tasks   []alloc.Retired
}

// Domain is one BRCU domain (global epoch, task registry, participant
// list — Algorithm 5 lines 4-7).
type Domain struct {
	epoch atomicx.Padded

	// cleared is the epoch-advance watermark: every advance from an epoch
	// below it has had a complete registry scan that found no blocking
	// critical section (laggards were absent or already neutralized). A
	// thread advancing from epoch eg with cleared > eg skips the scan
	// entirely — some thread already walked the whole registry for this
	// advance, and re-walking it could only re-observe handles known to be
	// ahead. Raised by max-CAS after a complete scan, never lowered, so
	// cleared ≤ epoch+1 at all times.
	//
	// Why the skip is safe: the baseline never made scan-and-advance
	// atomic — a thread could complete its scan, be descheduled
	// arbitrarily long, and only then CAS the epoch. Advancing on a
	// cached clean scan is exactly that interleaving with the scan and
	// the CAS performed by different threads. The one state that can
	// appear between the scan and the advance — a handle announcing
	// InCs(e<eg) from an epoch load delayed across advances — is harmless
	// for the same reason it is in the baseline: the announce store
	// happens after every batch tagged ≤ eg-1 was flushed (those flushes
	// read epoch < eg, so they completed before the epoch reached eg),
	// hence after those nodes were unlinked, so the late section can no
	// longer reach them. See DESIGN.md §11.
	cleared atomicx.Padded

	handles registry.Registry[Handle]
	rec     *stats.Reclamation

	maxLocalTasks  int
	forceThreshold int
	// effForce is the runtime signalling budget. It starts at the
	// configured ForceThreshold and is only ever lowered (and later
	// restored) by the watchdog, so the §5 bound computed from the
	// configured value stays a valid upper bound throughout.
	effForce atomic.Int32

	// population tracks registered handles and their peak, so the §5
	// bound can be evaluated after the fact with the N actually observed.
	population stats.Gauge

	// nextID hands out sequential handle ids, carried into misuse panics
	// and post-mortem traces.
	nextID atomic.Uint64

	// Lease machinery (internal/reap, DESIGN.md §9). clock is the coarse
	// activity clock the reaper publishes each tick; handles copy it into
	// their lease word with one relaxed store at Enter/Exit/Poll/Defer.
	// leaseOn gates those stores and follows the fault.On contract: set
	// once by EnableLeases before any worker goroutine touches a handle,
	// plain loads thereafter.
	clock   atomicx.PaddedInt64
	leaseOn bool

	tasksMu sync.Mutex
	tasks   []taggedBatch
}

// Option configures a Domain.
type Option func(*Domain)

// WithMaxLocalTasks sets the per-thread defer batch size (the paper's
// MaxLocalTasks).
func WithMaxLocalTasks(n int) Option {
	return func(d *Domain) {
		if n > 0 {
			d.maxLocalTasks = n
		}
	}
}

// WithForceThreshold sets how many failed epoch advances a thread tolerates
// before neutralizing the laggards (the paper's ForceThreshold).
func WithForceThreshold(n int) Option {
	return func(d *Domain) {
		if n > 0 {
			d.forceThreshold = n
		}
	}
}

// NewDomain creates a BRCU domain reporting into rec (nil allocates a
// private one).
func NewDomain(rec *stats.Reclamation, opts ...Option) *Domain {
	if rec == nil {
		rec = &stats.Reclamation{}
	}
	d := &Domain{rec: rec, maxLocalTasks: DefaultMaxLocalTasks, forceThreshold: DefaultForceThreshold}
	for _, o := range opts {
		o(d)
	}
	d.effForce.Store(int32(d.forceThreshold))
	return d
}

// Stats returns the domain's reclamation statistics.
func (d *Domain) Stats() *stats.Reclamation { return d.rec }

// Epoch returns the current global epoch.
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// GarbageBound returns the §5 bound on retired-but-unreclaimed nodes,
// 2GN + GN² (+H shields, which the caller adds), for the current number of
// registered threads.
func (d *Domain) GarbageBound() int64 {
	return d.GarbageBoundFor(d.handles.Len())
}

// GarbageBoundFor is GarbageBound for an explicit thread count (used when
// the threads have not registered yet).
func (d *Domain) GarbageBoundFor(threads int) int64 {
	g := int64(d.maxLocalTasks * d.forceThreshold)
	n := int64(threads)
	return 2*g*n + g*n*n
}

// HandlesPeak returns the highest number of simultaneously registered
// handles observed — the N to evaluate the §5 bound with after a run.
func (d *Domain) HandlesPeak() int { return int(d.population.Peak()) }

// GarbageBoundObserved is the §5 bound 2GN+GN² evaluated with the peak
// observed thread count (the caller adds H from its own shield
// accounting).
func (d *Domain) GarbageBoundObserved() int64 {
	return d.GarbageBoundFor(d.HandlesPeak())
}

// EnableLeases turns on lease stamping for this domain. It must be called
// before any goroutine uses a handle (the fault.On activation contract);
// core.StartReaper does so at construction time.
func (d *Domain) EnableLeases() {
	d.leaseOn = true
	d.clock.Store(time.Now().UnixNano())
}

// PublishClock publishes now (UnixNano) as the domain's activity clock.
// The reaper calls this once per tick; handles copy the value with one
// relaxed store at their next activity point, so lease staleness is
// measured in reaper ticks without any handle ever reading the wall clock.
func (d *Domain) PublishClock(now int64) { d.clock.Store(now) }

// Handle is one thread's participation record (Algorithm 5 lines 8-13).
// Not safe for concurrent use by multiple goroutines; the status word is
// read and CASed by reclaimers.
type Handle struct {
	// status is the packed {phase, epoch} word — the single most
	// contended word in the scheme (stored by the owner at every
	// Enter/Exit, read and CASed by every advancing reclaimer), so it
	// owns its cache line.
	status atomicx.Padded

	// lease is the last observed domain clock (UnixNano). The owner's
	// stores double as the release edge that publishes its batch
	// mutations to the reaper; see StampLease and Lease.
	lease atomicx.PaddedInt64

	d       *Domain
	id      uint64
	batch   []alloc.Retired
	pushCnt int
	exec    func(alloc.Retired)

	// flushAt is the batch-size watermark that triggers flushAndAdvance
	// (the domain's maxLocalTasks, copied here at registration so the
	// per-Defer check reads a handle-local word instead of chasing the
	// shared Domain). batchCap is the capacity of the next batch
	// allocation: flush hands the whole backing array to the global task
	// set, and the replacement grows geometrically (16, 32, … up to
	// maxLocalTasks) so rarely-retiring handles stay small while busy
	// ones converge to one full-size allocation and zero copies per
	// flush. Both owner-goroutine-only.
	flushAt  int
	batchCap int

	// Epoch-advance resume cursor (owner-goroutine-only). A failed
	// advance from scanEpoch parks its registry snapshot and position
	// here; the next attempt from the same epoch resumes mid-snapshot
	// instead of rescanning handles already observed non-blocking.
	// Resuming a stale snapshot is safe: handles registered after it was
	// taken announce epochs ≥ scanEpoch (the global epoch has not moved)
	// and so can never block this advance, and handles removed from the
	// registry sit in Out/Reaped, which the scan skips. scanForced
	// accumulates whether any resumed leg sent a signal.
	scanSnap   []*Handle
	scanPos    int
	scanEpoch  uint64
	scanForced bool

	// Cooperative cancellation (core.TraverseCtx). The owner arms a fresh
	// token per cancellable operation; a watcher goroutine requests
	// cancellation by presenting the token it saw armed. Tokens make a
	// late watcher from a finished operation harmless: its RequestCancel
	// misses the newly armed token, and at worst its SelfNeutralize costs
	// one spurious rollback. armSeq is owner-goroutine-only.
	cancelArm atomic.Uint64
	cancelReq atomic.Uint64
	armSeq    uint64

	// gen counts resurrections (owner-goroutine-only): a reaped handle
	// whose owner turns out to be alive re-registers and bumps gen, so
	// the Traverse engine knows its checkpointed protections were cleared
	// by the reaper and restarts from scratch.
	gen uint64
	// onResurrect re-registers composed per-scheme state (the HP half,
	// core-domain membership) when a reaped handle resurrects.
	onResurrect func()

	// Observability state, touched only past the obs.On gate. trace is
	// nil-safe; pollN samples the epoch-lag histogram; csStart times the
	// running critical-section attempt. All owner-goroutine-only.
	trace   *obs.Trace
	pollN   uint
	csStart int64
}

// Register adds a thread to the domain with the default executor (free the
// node and update statistics).
func (d *Domain) Register() *Handle {
	h := &Handle{d: d, id: d.nextID.Add(1), flushAt: d.maxLocalTasks}
	h.batchCap = initialBatchCap
	if h.batchCap > d.maxLocalTasks {
		h.batchCap = d.maxLocalTasks
	}
	h.exec = func(r alloc.Retired) {
		r.Pool.FreeSlot(r.Slot)
		d.rec.Reclaimed.Inc()
		d.rec.Unreclaimed.Add(-1)
		if obs.On && r.At != 0 {
			d.rec.ReclaimAgeNanos.Record(obs.Nanos() - r.At)
		}
	}
	if obs.On {
		h.trace = obs.NewTrace("brcu")
	}
	// A fresh handle starts with a live lease even if it never performs
	// an operation before the reaper's first look at it.
	h.lease.Store(time.Now().UnixNano())
	d.handles.Add(h)
	d.population.Add(1)
	return h
}

// SetExecutor replaces the deferred-task executor (two-step retirement
// installs the inner HP-Retire here, Algorithm 4).
func (h *Handle) SetExecutor(exec func(alloc.Retired)) { h.exec = exec }

// SetResurrect installs the hook run when a reaped handle's owner turns
// out to be alive and re-registers (internal/core re-adds the HP half and
// the domain membership there). Owner-goroutine-only, set at registration.
func (h *Handle) SetResurrect(fn func()) { h.onResurrect = fn }

// Lease returns the handle's last activity stamp (UnixNano). The lease
// is purely a liveness signal: adoption safety comes from the status
// word (the Reaping phase excludes the owner, and BeginMut makes every
// batch mutation un-quarantinable), not from lease ordering.
func (h *Handle) Lease() int64 { return h.lease.Load() }

// StampLease refreshes the activity lease so the reaper keeps treating
// the owner as alive. No-op while leases are off.
func (h *Handle) StampLease() {
	if h.d.leaseOn {
		h.lease.Store(h.d.clock.Load())
	}
}

// ID returns the handle's sequential id within its domain.
func (h *Handle) ID() uint64 { return h.id }

func phaseName(ph uint64) string {
	switch ph {
	case phaseOut:
		return "Out"
	case phaseInCs:
		return "InCs"
	case phaseInRm:
		return "InRm"
	case phaseRbReq:
		return "RbReq"
	case phaseQuarantined:
		return "Quarantined"
	case phaseReaping:
		return "Reaping"
	case phaseReaped:
		return "Reaped"
	case phaseInMut:
		return "InMut"
	}
	return "phase?"
}

// Describe formats the handle's identity and live status — id,
// resurrection generation, phase, announced epoch — so misuse panics and
// the panic-containment layer produce actionable post-mortems.
func (h *Handle) Describe() string {
	ph, e := unpack(h.status.Load())
	return fmt.Sprintf("handle#%d gen=%d phase=%s epoch=%d", h.id, h.gen, phaseName(ph), e)
}

// Gen returns the handle's resurrection generation. It changes only
// inside Enter (via ensureLive), on the owner goroutine; the Traverse
// engine compares it across Enters to detect a reap-and-resurrect, whose
// shield clearing invalidates checkpointed cursors.
func (h *Handle) Gen() uint64 { return h.gen }

// settle resolves the reaper-transient phases: it cancels a pending
// quarantine (the owner-wins CAS of the two-phase protocol) and waits out
// an in-flight adoption. It returns the resulting phase; phaseReaped
// means the handle has been reaped and its state adopted.
func (h *Handle) settle() uint64 {
	for {
		st := h.status.Load()
		ph, _ := unpack(st)
		switch ph {
		case phaseQuarantined:
			if h.status.CompareAndSwap(st, pack(phaseOut, 0)) {
				return phaseOut
			}
			// Lost to the reaper's Quarantined→Reaping CAS; re-read.
		case phaseReaping:
			// The reap is short and bounded (slice moves and registry
			// copy-on-writes under domain mutexes, no waiting on other
			// owners); wait for FinishReap.
			runtime.Gosched()
		default:
			return ph
		}
	}
}

// enterLeased is Enter with the reap protocol live: resolve any reaper
// phase (cancelling a quarantine, resurrecting after a reap), then CAS
// into the critical section. The transition must be a CAS, not a blind
// store — an owner descheduled between resolving the phase and the store
// could be quarantined and reaped in the gap, and a blind InCs store
// would overwrite the Reaped word and run a critical section on a handle
// the reaper has already stripped from the registries.
func (h *Handle) enterLeased() {
	h.lease.Store(h.d.clock.Load())
	for {
		if h.settle() == phaseReaped {
			h.resurrect()
		}
		st := h.status.Load()
		if ph, _ := unpack(st); ph >= phaseQuarantined {
			continue // the reaper moved again; settle once more
		}
		// st is Out or a stale RbReq from the previous section; both are
		// superseded by the new section.
		if h.status.CompareAndSwap(st, pack(phaseInCs, h.d.epoch.Load())) {
			return
		}
	}
}

// BeginMut claims the un-reapable InMut phase around an owner-side
// mutation of reaper-adoptable state (the defer batch; in internal/core
// also the HP retired list) performed outside critical sections. It first
// resolves any reaper phase — cancelling a pending quarantine,
// resurrecting a reaped handle — so after it returns a reap can only have
// happened entirely before the mutation, never concurrently with it: the
// status word, not the lease clock, is what makes adoption race-free.
//
// It reports whether the phase was claimed; false means the handle is
// already un-reapable (leases off, inside a masked region, or an
// enclosing BeginMut). Call EndMut exactly when it returns true.
func (h *Handle) BeginMut() bool {
	if !h.d.leaseOn {
		return false
	}
	ph, _ := unpack(h.status.Load())
	if ph == phaseInRm || ph == phaseInMut {
		return false
	}
	if ph == phaseInCs {
		panic("brcu: BeginMut inside an unmasked critical section (" + h.Describe() + ")")
	}
	// End the lease staleness up front so the reaper stops re-arming
	// quarantines while we spin below.
	h.lease.Store(h.d.clock.Load())
	for {
		if h.settle() == phaseReaped {
			h.resurrect()
		}
		st := h.status.Load()
		if ph, _ := unpack(st); ph >= phaseQuarantined {
			continue // the reaper moved again; settle once more
		}
		// st is Out (or a stale RbReq with no section to roll back —
		// superseded, exactly as Exit would have).
		if h.status.CompareAndSwap(st, pack(phaseInMut, 0)) {
			return true
		}
	}
}

// EndMut leaves the InMut phase. The reaper never touches InMut, so the
// store cannot smash a reaper-owned word; the trailing lease stamp keeps
// the lease fresh across the mutation it just published.
func (h *Handle) EndMut() {
	h.status.Store(pack(phaseOut, 0))
	h.lease.Store(h.d.clock.Load())
}

// resurrect re-registers a reaped handle whose owner turned out to be
// alive. The reaper already adopted the old batch and retired list and
// cleared the shields, so the handle restarts empty; bumping gen tells the
// Traverse engine to discard checkpoints the pre-reap shields protected.
func (h *Handle) resurrect() {
	h.batch = nil
	h.pushCnt = 0
	h.scanSnap = nil
	h.gen++
	d := h.d
	d.handles.Add(h)
	d.population.Add(1)
	if h.onResurrect != nil {
		h.onResurrect()
	}
	h.status.Store(pack(phaseOut, 0))
}

// TryQuarantine begins a reap: CAS Out/RbReq → Quarantined. It fails when
// the handle is inside a live critical section (a stalled-but-registered
// section is neutralization's and the watchdog's job, not the reaper's)
// or already mid-reap. Re-quarantining an already-quarantined handle
// succeeds, so a reaper that lost track (restart, missed tick) re-arms
// the grace period instead of wedging the handle in Quarantined forever.
func (h *Handle) TryQuarantine() bool {
	for {
		st := h.status.Load()
		switch ph, _ := unpack(st); ph {
		case phaseQuarantined:
			return true
		case phaseOut, phaseRbReq:
			if h.status.CompareAndSwap(st, pack(phaseQuarantined, 0)) {
				return true
			}
		default:
			return false
		}
	}
}

// TryBeginReap confirms a quarantined handle dead: CAS Quarantined →
// Reaping. Failure means the owner woke up and cancelled the quarantine.
// Only the reaper calls this, after the grace period.
func (h *Handle) TryBeginReap() bool {
	return h.status.CompareAndSwap(pack(phaseQuarantined, 0), pack(phaseReaping, 0))
}

// FinishReap publishes the end of a reap: Reaping → Reaped. An owner
// spinning in settle proceeds to resurrect only after this store, which
// is what makes the whole reap — adoption AND registry removal — atomic
// against resurrection: the reaper must call it only after the victim
// has left every registry, or a resurrecting owner could be stripped
// from them while live.
func (h *Handle) FinishReap() { h.status.Store(pack(phaseReaped, 0)) }

// Reaped reports whether the handle is currently in the reaped state:
// the lease reaper confirmed its owner dead, adopted its deferred state
// and removed it from the registries, and no owner has resurrected it
// since. The handle pool polls this from its leak sweep (any goroutine,
// hence the atomic load): a pooled checkout whose handle was reaped is a
// leak the reaper already cleaned up after, so the pool can retire the
// checkout slot without touching the handle.
func (h *Handle) Reaped() bool {
	ph, _ := unpack(h.status.Load())
	return ph == phaseReaped
}

// CancelReap aborts a confirmed reap without adopting: Reaping → Out.
// The handle stays registered and its owner, if merely slow, continues
// with its state intact — no resurrection, no generation bump. The
// reaper uses it for victims with nothing to adopt, so an idle-but-alive
// handle is never churned through reap/resurrect cycles. Reaper-only,
// between TryBeginReap and what would have been FinishReap.
func (h *Handle) CancelReap() { h.status.Store(pack(phaseOut, 0)) }

// BatchEmpty reports whether the handle's local defer batch is empty.
// Reaper-only, between TryBeginReap and FinishReap/CancelReap — the
// Reaping phase excludes the owner, which is what makes reading the
// plain slice safe.
func (h *Handle) BatchEmpty() bool { return len(h.batch) == 0 }

// AdoptBatch moves the handle's local deferred batch into the global task
// set, tagged with the current epoch, as if the (dead) owner had flushed
// it. The tag is conservative: the batch executes only after a further
// epoch advance, strictly later than the owner's own flush would have
// allowed, so the §5 safety argument is unchanged. Reaper-only, between
// TryBeginReap and FinishReap; returns the number of adopted tasks.
func (h *Handle) AdoptBatch() int {
	n := len(h.batch)
	if n == 0 {
		h.batch = nil
		return 0
	}
	d := h.d
	var ts int64
	if obs.On {
		ts = obs.Nanos()
	}
	// The backing array moves to the global set wholesale; a resurrected
	// owner starts from a nil batch and can never touch it again.
	b := taggedBatch{epoch: d.epoch.Load(), flushed: ts, tasks: h.batch}
	h.batch = nil
	d.tasksMu.Lock()
	d.tasks = append(d.tasks, b)
	d.tasksMu.Unlock()
	return n
}

// RemoveAll bulk-removes reaped handles from the registry with a single
// copy-on-write publication. The reaper must call it while every handle
// is still in the Reaping phase (before FinishReap), so no owner can
// resurrect — and re-register — concurrently with the removal.
func (d *Domain) RemoveAll(hs []*Handle) {
	if len(hs) == 0 {
		return
	}
	set := make(map[*Handle]bool, len(hs))
	for _, h := range hs {
		set[h] = true
	}
	d.handles.RemoveWhere(func(h *Handle) bool { return set[h] })
	d.population.Add(-int64(len(hs)))
}

// Unregister removes the thread, flushing pending deferred tasks first.
// Unregistering a handle the reaper already adopted resurrects it first
// and then removes it, so the registry and the population gauge stay
// balanced no matter how a reap interleaves.
func (h *Handle) Unregister() {
	if ph, _ := unpack(h.status.Load()); ph == phaseInCs || ph == phaseInRm {
		panic("brcu: unregister inside a critical section (" + h.Describe() + ")")
	}
	// Hold InMut across the flush and the registry removal: a reap can
	// then only land entirely before this point (resolved by BeginMut via
	// resurrection), never concurrently with the teardown — which is what
	// keeps the population gauge from being double-decremented.
	claimed := h.BeginMut()
	if len(h.batch) > 0 {
		h.flush()
	}
	h.d.handles.Remove(h)
	h.d.population.Add(-1)
	if claimed {
		h.EndMut()
	}
}

// Enter begins (or re-begins, after a rollback) a critical section: it
// announces InCs with the current global epoch (Algorithm 5 line 16). Any
// pending RbReq from a previous section is superseded.
func (h *Handle) Enter() {
	if obs.On {
		h.csStart = obs.Nanos()
	}
	if h.d.leaseOn {
		h.enterLeased()
		return
	}
	h.status.Store(pack(phaseInCs, h.d.epoch.Load()))
}

// Poll is the cooperative stand-in for signal delivery: it reports false
// when a neutralization request is pending, in which case the caller must
// roll back — discard everything derived since the last complete
// checkpoint and either Exit or Enter again. Poll is the only operation on
// the hot traversal path: a single atomic load.
func (h *Handle) Poll() bool {
	if fault.On {
		fault.Fire(fault.SitePoll)
	}
	ph, e := unpack(h.status.Load())
	if h.d.leaseOn {
		h.lease.Store(h.d.clock.Load())
	}
	if obs.On {
		// Sample the epoch lag every 64th poll: frequent enough to see
		// a lagging traversal, cheap enough to leave the hot path alone.
		if h.pollN++; h.pollN&63 == 0 && ph != phaseOut {
			h.d.rec.PollLag.Record(int64(h.d.epoch.Load()) - int64(e))
		}
	}
	// The reaper phases (≥ RbReq) also demand a rollback: the next Enter
	// runs ensureLive, which cancels a quarantine or resurrects.
	return ph < phaseRbReq
}

// SelfNeutralize marks this handle as neutralized, exactly as if a
// reclaimer's signal had landed: CAS InCs/InRm → RbReq at the current
// epoch. The fault-injection layer uses it to force rollbacks at arbitrary
// traversal steps and mid-Mask; it reports whether a request was planted
// (false when the handle is outside a critical section or already
// neutralized). It deliberately does not count in Stats.Signals — it is
// not a reclaimer signal.
func (h *Handle) SelfNeutralize() bool {
	for {
		st := h.status.Load()
		ph, e := unpack(st)
		if ph != phaseInCs && ph != phaseInRm {
			return false
		}
		if h.status.CompareAndSwap(st, pack(phaseRbReq, e)) {
			return true
		}
	}
}

// Refresh re-announces the current global epoch without leaving the
// critical section, provided no rollback is pending. It returns false if
// the thread has been neutralized (the caller must roll back). HP-BRCU
// calls this after each completed checkpoint so that a long traversal
// never lags the epoch by more than one checkpoint interval.
func (h *Handle) Refresh() bool {
	st := h.status.Load()
	ph, _ := unpack(st)
	if ph != phaseInCs {
		// RbReq or a reaper phase: the caller must roll back (and Enter,
		// which resolves the reaper phases via ensureLive).
		return false
	}
	e := h.d.epoch.Load()
	// CAS so a concurrent neutralization is never overwritten.
	return h.status.CompareAndSwap(st, pack(phaseInCs, e))
}

// Exit ends the critical section (Algorithm 5 line 18). A pending RbReq is
// discarded: per the framework contract the caller has already validated
// its results with a successful Poll after its last protection, so
// completing instead of rolling back is safe (see package comment).
func (h *Handle) Exit() {
	if h.d.leaseOn {
		h.exitLeased()
	} else {
		h.status.Store(pack(phaseOut, 0))
	}
	if obs.On && h.csStart != 0 {
		h.d.rec.CSNanos.Record(obs.Nanos() - h.csStart)
		h.csStart = 0
	}
}

// exitLeased is Exit with the reap protocol live: a blind store could
// smash a Quarantined/Reaping/Reaped word the reaper owns, so leave those
// phases alone (the next Enter resolves them through ensureLive) and CAS
// everything else to Out.
func (h *Handle) exitLeased() {
	for {
		st := h.status.Load()
		if ph, _ := unpack(st); ph >= phaseQuarantined {
			return
		}
		if h.status.CompareAndSwap(st, pack(phaseOut, 0)) {
			h.lease.Store(h.d.clock.Load())
			return
		}
	}
}

// RecordRollback counts one critical-section rollback.
func (h *Handle) RecordRollback() {
	h.d.rec.Rollbacks.Inc()
	if obs.On {
		h.trace.Rec(obs.EvRollback, 0)
	}
}

// CriticalSection runs body as a boundable critical section (Algorithm 5
// line 14). The body must poll via Poll and return false to roll back; it
// is then re-run from the start with a fresh epoch, mirroring the paper's
// siglongjmp to the checkpoint at line 15. The body must be
// abort-rollback-safe (§4.1) apart from writes wrapped in Mask.
func (h *Handle) CriticalSection(body func() bool) {
	for {
		h.Enter()
		done := body()
		h.Exit()
		if done {
			return
		}
		h.RecordRollback()
	}
}

// Mask runs body as an abort-masked region (Algorithm 6): body must be
// rollback-safe, and a neutralization arriving while it runs is deferred to
// the region's end. The return values are:
//
//	ran          — whether body was executed;
//	mustRollback — whether the caller must roll back now (before body when
//	               ran is false, after it completed when ran is true).
//
// Entry is a CAS InCs→InRm so that a neutralization that already landed
// prevents the masked writes; exit is a CAS InRm→InCs that loses exactly
// when a neutralization landed mid-region (the paper's race between Mask
// and SignalHandler, resolved the same way).
func (h *Handle) Mask(body func()) (ran, mustRollback bool) {
	if fault.On {
		fault.Fire(fault.SiteMaskEnter)
	}
	st := h.status.Load()
	ph, e := unpack(st)
	if ph != phaseInCs {
		if ph >= phaseRbReq {
			// Neutralized (or quarantined by the reaper): roll back
			// before any masked write; Enter resolves the phase.
			return false, true
		}
		panic("brcu: Mask outside a critical section (" + h.Describe() + ")")
	}
	if !h.status.CompareAndSwap(st, pack(phaseInRm, e)) {
		// Lost to a neutralizer: roll back before any masked write.
		return false, true
	}
	h.runMasked(body, e)
	if fault.On {
		fault.Fire(fault.SiteMaskExit)
		if fault.Fire(fault.SiteMaskAbort) {
			h.SelfNeutralize()
		}
	}
	if !h.status.CompareAndSwap(pack(phaseInRm, e), pack(phaseInCs, e)) {
		// Neutralized during the region: the writes stand (they are
		// rollback-safe and complete); control rolls back now.
		if obs.On {
			h.trace.Rec(obs.EvMaskDefer, int64(e))
		}
		return true, true
	}
	return true, false
}

// runMasked runs the masked body behind a recover barrier. A panic that
// escapes it (user code, or SitePanic standing in for one) unwinds the
// region before continuing to the outer barrier in core.Traverse: restore
// InRm→InCs so the abort path sees the section in its normal state — a
// lost CAS means a neutralization landed mid-region and the standing
// RbReq is already what the abort path expects.
func (h *Handle) runMasked(body func(), e uint64) {
	defer func() {
		if r := recover(); r != nil {
			h.status.CompareAndSwap(pack(phaseInRm, e), pack(phaseInCs, e))
			panic(r)
		}
	}()
	if fault.On && fault.Fire(fault.SitePanic) {
		// Inside the region but before any masked write: aborting here
		// leaks nothing.
		panic(fault.ErrInjectedPanic)
	}
	body()
}

// ForceOut drives the handle out of whatever phase a panic left it in,
// restoring the Out state the next operation expects. Owner-side only —
// it is the recover barrier's stand-in for the Exit (or Enter-and-settle)
// the unwound control flow never performed. Reaper-transient phases are
// resolved exactly as Enter would: a quarantine is cancelled, an
// in-flight adoption waited out, a reaped handle resurrected.
func (h *Handle) ForceOut() {
	for {
		if h.settle() == phaseReaped {
			h.resurrect()
			return
		}
		st := h.status.Load()
		ph, _ := unpack(st)
		if ph >= phaseQuarantined {
			continue // the reaper moved again; settle once more
		}
		if ph == phaseOut {
			return
		}
		// InCs, InRm, RbReq or InMut: abandon the section or mutation span.
		if h.status.CompareAndSwap(st, pack(phaseOut, 0)) {
			if h.d.leaseOn {
				h.lease.Store(h.d.clock.Load())
			}
			return
		}
	}
}

// --- Cooperative cancellation (core.TraverseCtx) -----------------------

// ArmCancel installs a fresh cancellation token for the operation about
// to run and returns it. Owner-side; pair with DisarmCancel.
func (h *Handle) ArmCancel() uint64 {
	h.armSeq++
	tok := h.armSeq
	h.cancelReq.Store(0)
	h.cancelArm.Store(tok)
	return tok
}

// DisarmCancel retires the current token after the operation returns.
// A watcher racing with it can at worst leave a stale cancelReq behind,
// which no future token ever matches.
func (h *Handle) DisarmCancel() {
	h.cancelArm.Store(0)
	h.cancelReq.Store(0)
}

// RequestCancel asks the owner to abandon the operation that armed tok.
// Watcher-side (any goroutine). If the token is still armed it plants the
// request and self-neutralizes the owner's live critical section, so the
// owner reaches its next cancel check within one poll interval instead of
// finishing the traversal first.
func (h *Handle) RequestCancel(tok uint64) {
	if tok == 0 || h.cancelArm.Load() != tok {
		return
	}
	h.cancelReq.Store(tok)
	h.SelfNeutralize()
}

// CancelPending reports whether RequestCancel has fired for tok.
// Owner-side, checked at rollback boundaries.
func (h *Handle) CancelPending(tok uint64) bool {
	return tok != 0 && h.cancelReq.Load() == tok
}

// FlushLocal pushes the local defer batch to the global task set without
// forcing an epoch advance. The recover barrier calls it after restoring
// a panicked handle: the batch holds only fully committed retirements, so
// flushing it means an owner that abandons the handle after the panic
// leaves nothing behind that the next drain cannot reach.
func (h *Handle) FlushLocal() {
	claimed := h.BeginMut()
	h.flush()
	if claimed {
		h.EndMut()
	}
}

// TraceEvent records an event on this handle's obs trace (no-op unless
// the observability layer is active; nil-safe). The lifecycle layer in
// internal/core uses it for panic, cancel and close events.
func (h *Handle) TraceEvent(k obs.EventKind, arg int64) {
	if obs.On {
		h.trace.Rec(k, arg)
	}
}

// Defer schedules a task for execution after all current critical sections
// end (Algorithm 5 lines 22-34). Defer itself is rollback-unsafe and must
// be called outside critical sections or inside a masked region.
//
// When the local batch fills, it is pushed to the global task set tagged
// with the global epoch; the thread then tries to advance the epoch,
// neutralizing lagging threads once its private failure budget
// (ForceThreshold) is exhausted; finally it executes expired tasks.
func (h *Handle) Defer(slot uint64, pool alloc.Freer) {
	h.d.rec.Retired.Inc()
	h.d.rec.Unreclaimed.Add(1)
	h.DeferNoCount(slot, pool)
}

// DeferNoCount is Defer without the Retired/Unreclaimed accounting; the
// two-step retirement of HP-BRCU counts a node once at the outer Retire
// (internal/core) and uses this entry point for the inner defer.
func (h *Handle) DeferNoCount(slot uint64, pool alloc.Freer) {
	// Defer is rollback-unsafe (§4.1): inside a critical section it may
	// only run under an abort mask, where the rollback is deferred past
	// it. Catch the misuse that would otherwise corrupt the task
	// registry on a rollback.
	if ph, _ := unpack(h.status.Load()); ph == phaseInCs {
		panic("brcu: Defer inside an unmasked critical section (rollback-unsafe, §4.1; " + h.Describe() + ")")
	}
	// Hold the un-reapable InMut phase across the batch mutation: a
	// quarantine can then only land before or after it, never while the
	// append/flush is in flight. No-op inside a masked region or an
	// enclosing BeginMut, where the reaper already cannot touch us.
	claimed := h.BeginMut()
	r := alloc.Retired{Slot: slot, Pool: pool}
	if obs.On {
		r.At = obs.Nanos()
	}
	if h.batch == nil {
		// The previous flush handed its backing array to the global task
		// set; start a fresh one at the current rung of the geometric
		// capacity ladder (see batchCap).
		h.batch = make([]alloc.Retired, 0, max(h.batchCap, 1))
	}
	h.batch = append(h.batch, r)
	if len(h.batch) >= h.flushAt {
		h.flushAndAdvance()
	}
	if claimed {
		h.EndMut()
	} else if h.d.leaseOn {
		// Masked region: the status word already protects the mutation;
		// just keep the lease fresh.
		h.lease.Store(h.d.clock.Load())
	}
}

// flush moves the local batch to the global task set tagged with the
// current global epoch (line 26). An empty batch is not enqueued: a
// zero-task taggedBatch would keep pendingBatches nonzero after a drain,
// which the watchdog would misread as a stalled epoch and answer with an
// endless broadcast storm.
func (h *Handle) flush() {
	if len(h.batch) == 0 {
		return
	}
	d := h.d
	e := d.epoch.Load()
	// Hand the backing array to the global task set wholesale instead of
	// copying it out — the drain drops it when the batch expires. The next
	// Defer allocates the replacement one rung up the geometric ladder, so
	// a steadily retiring handle pays one allocation and zero copies per
	// flush where it used to pay both.
	tasks := h.batch
	h.batch = nil
	if h.batchCap < h.flushAt {
		h.batchCap *= 2
		if h.batchCap > h.flushAt {
			h.batchCap = h.flushAt
		}
	}

	var ts int64
	if obs.On {
		ts = obs.Nanos()
	}
	d.tasksMu.Lock()
	d.tasks = append(d.tasks, taggedBatch{epoch: e, flushed: ts, tasks: tasks})
	d.tasksMu.Unlock()
}

func (h *Handle) flushAndAdvance() {
	d := h.d
	eg := d.epoch.Load()
	h.flush()
	h.pushCnt++
	if fault.On && fault.Fire(fault.SiteAdvanceStorm) {
		// Neutralization storm: exhaust the budget so this advance
		// signals every laggard immediately.
		h.pushCnt = int(d.effForce.Load())
	}

	// Our own critical section blocks the epoch like anyone else's. This
	// matters when Defer runs inside an abort-masked region: advancing
	// past our own lagging epoch would let our deferred tasks free nodes
	// this very section still protects (e.g. the remainder of a marked
	// run we are retiring), without any neutralization ever telling us to
	// roll back. We never signal ourselves; we simply give up advancing
	// until this section exits.
	if ph, e := unpack(h.status.Load()); (ph == phaseInCs || ph == phaseInRm) && e < eg {
		return
	}

	forced := false
	if d.cleared.Load() <= eg {
		// No complete clean scan for this advance yet: walk (or resume
		// walking) the registry.
		if !h.scanForAdvance(eg) {
			// A laggard exists and the failure budget is not yet
			// exhausted: give up advancing this time (line 31); the
			// cursor resumes from the laggard on the next attempt.
			return
		}
		forced = h.scanForced
		h.scanSnap = nil
		// The scan covered the whole registry and every section it saw
		// was absent, ahead, or neutralized: publish that so concurrent
		// and later advancers from eg skip their scans.
		raiseWatermark(&d.cleared, eg+1)
	}

	h.pushCnt = 0
	if d.epoch.CompareAndSwap(eg, eg+1) {
		d.rec.EpochAdvances.Inc()
		if forced {
			d.rec.ForcedAdvances.Inc()
		}
		if obs.On {
			kind := obs.EvEpochAdvance
			if forced {
				kind = obs.EvForcedAdvance
			}
			h.trace.Rec(kind, int64(eg+1))
		}
	}
	h.executeExpired(eg)
}

// scanForAdvance walks the registry looking for critical sections that
// block the advance from eg, neutralizing them once the failure budget is
// exhausted. It reports whether the scan completed with every handle
// absent, ahead, or neutralized. On false the cursor state (scanSnap,
// scanPos, scanForced) is parked so the next attempt from the same epoch
// resumes at the blocking handle instead of rescanning the prefix — the
// prefix was observed non-blocking for eg, and (delayed stale announces
// aside, which are harmless; see Domain.cleared) nothing can re-enter eg
// while the global epoch sits at eg.
func (h *Handle) scanForAdvance(eg uint64) bool {
	if h.scanEpoch != eg || h.scanSnap == nil {
		h.scanSnap = h.d.handles.Snapshot()
		h.scanPos = 0
		h.scanEpoch = eg
		h.scanForced = false
	}
	for h.scanPos < len(h.scanSnap) {
		other := h.scanSnap[h.scanPos]
		if other == h {
			h.scanPos++
			continue
		}
		ok, signalled := h.neutralizeIfLagging(other, eg)
		if !ok {
			return false
		}
		h.scanForced = h.scanForced || signalled
		h.scanPos++
	}
	return true
}

// raiseWatermark max-CASes w up to v; concurrent raises keep the highest.
func raiseWatermark(w *atomicx.Padded, v uint64) {
	for {
		cur := w.Load()
		if cur >= v || w.CompareAndSwap(cur, v) {
			return
		}
	}
}

// neutralizeIfLagging checks other against the epoch eg. It returns
// ok=false when other is lagging but this thread's failure budget is below
// ForceThreshold (the caller gives up advancing). Otherwise it neutralizes
// other if needed and reports whether a signal was sent.
//
// The whole verdict costs one atomic load: phase and announced epoch share
// a packed word, and the phase comparison short-circuits first, so
// Out/Reaped (and every other non-blocking phase) are skipped without a
// separate epoch-word access.
func (h *Handle) neutralizeIfLagging(other *Handle, eg uint64) (ok, signalled bool) {
	d := h.d
	for {
		st := other.status.Load()
		ph, eo := unpack(st)
		// Only live critical sections block the epoch; RbReq threads are
		// already doomed, Out threads are absent (line 30), and the
		// reaper phases (≥ RbReq) have no live section either.
		if ph == phaseOut || ph >= phaseRbReq || eo >= eg {
			return true, false
		}
		if h.pushCnt < int(d.effForce.Load()) {
			return false, false
		}
		// SendSignal (line 32): the CAS is the delivery point. InRm
		// victims finish their masked region first (Algorithm 6).
		if other.status.CompareAndSwap(st, pack(phaseRbReq, eo)) {
			d.rec.Signals.Inc()
			if obs.On {
				h.trace.Rec(obs.EvSignal, int64(eo))
			}
			return true, true
		}
		// The victim moved (exited, refreshed, masked); re-evaluate.
	}
}

// executeExpired runs every globally queued task tagged eg-1 or older
// (line 34): all live critical sections are now at epoch ≥ eg, so they
// began after those nodes were unlinked.
func (h *Handle) executeExpired(eg uint64) {
	if eg == 0 {
		return
	}
	if fault.On && fault.Fire(fault.SiteDrainSkip) {
		// Delayed drain: the expired batches stay queued until the next
		// advance (the plan's cooldown keeps skips non-consecutive, so
		// at most one extra epoch of batches accumulates).
		return
	}
	limit := eg - 1
	d := h.d

	d.tasksMu.Lock()
	var run []taggedBatch
	kept := d.tasks[:0] // in-place filter
	for _, b := range d.tasks {
		if b.epoch <= limit {
			run = append(run, b)
		} else {
			kept = append(kept, b)
		}
	}
	d.tasks = kept
	d.tasksMu.Unlock()

	var now int64
	if obs.On && len(run) > 0 {
		now = obs.Nanos()
	}
	tasks := 0
	for _, b := range run {
		tasks += len(b.tasks)
		if now != 0 && b.flushed != 0 {
			d.rec.GraceNanos.Record(now - b.flushed)
		}
		for _, r := range b.tasks {
			h.exec(r)
		}
	}
	if obs.On && tasks > 0 {
		h.trace.Rec(obs.EvDrain, int64(tasks))
	}
}

// Barrier flushes this handle's pending tasks and forces epoch advances
// until they have executed. Used by teardown paths and tests; concurrent
// critical sections will be neutralized.
func (h *Handle) Barrier() {
	// Hold InMut across the forced flushes (see DeferNoCount); no-op when
	// an enclosing BeginMut — e.g. internal/core's composed Barrier —
	// already claimed it.
	claimed := h.BeginMut()
	for i := 0; i < 4; i++ {
		h.ForceFlush()
	}
	if claimed {
		h.EndMut()
	} else if h.d.leaseOn {
		h.lease.Store(h.d.clock.Load())
	}
}

// ForceFlush performs one forced flush-and-advance round: the batch is
// pushed regardless of size and the advance signals laggards immediately.
// The emergency-drain tier of the backpressure ladder calls this from the
// retire path (internal/core).
func (h *Handle) ForceFlush() {
	h.pushCnt = h.d.forceThreshold // force (≥ the effective threshold)
	h.flushAndAdvance()
}

// pendingBatches reports how many flushed batches are waiting in the
// global task set (the watchdog's stalled-drain signal).
func (d *Domain) pendingBatches() int {
	d.tasksMu.Lock()
	n := len(d.tasks)
	d.tasksMu.Unlock()
	return n
}

// EffectiveForceThreshold returns the runtime signalling budget: the
// configured ForceThreshold unless the watchdog has escalated it down.
func (d *Domain) EffectiveForceThreshold() int { return int(d.effForce.Load()) }
