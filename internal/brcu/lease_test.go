package brcu

import (
	"testing"
	"time"

	"github.com/smrgo/hpbrcu/internal/alloc"
)

// leaseDomain builds a domain with leases on and a large batch so deferred
// tasks stay local (the interesting state for adoption).
func leaseDomain(t *testing.T) *Domain {
	t.Helper()
	d := NewDomain(nil, WithMaxLocalTasks(1024), WithForceThreshold(1000000))
	d.EnableLeases()
	return d
}

func TestQuarantineReapAdoptsBatch(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := leaseDomain(t)
	victim := d.Register()
	for i := 0; i < 5; i++ {
		retireOne(t, pool, cache, victim)
	}
	if len(victim.batch) != 5 {
		t.Fatalf("victim batch = %d, want 5 local tasks", len(victim.batch))
	}

	// Two-phase reap: quarantine, confirm, adopt, publish.
	if !victim.TryQuarantine() {
		t.Fatal("TryQuarantine failed on an out-of-CS handle")
	}
	if !victim.TryQuarantine() {
		t.Fatal("re-quarantine of a quarantined handle must succeed (re-arm)")
	}
	if !victim.TryBeginReap() {
		t.Fatal("TryBeginReap failed on a quarantined handle")
	}
	if n := victim.AdoptBatch(); n != 5 {
		t.Fatalf("AdoptBatch = %d, want 5", n)
	}
	if victim.batch != nil {
		t.Fatal("victim batch not detached after adoption")
	}
	if got := d.pendingBatches(); got != 1 {
		t.Fatalf("pendingBatches = %d, want 1 adopted batch", got)
	}
	victim.FinishReap()
	d.RemoveAll([]*Handle{victim})
	if d.handles.Len() != 0 {
		t.Fatalf("registry has %d handles after RemoveAll", d.handles.Len())
	}

	// A fresh handle's barrier drains the adopted garbage: the leak is
	// recovered without the dead owner's cooperation.
	drainer := d.Register()
	drainer.Barrier()
	drainer.Unregister()
	if got := d.rec.Unreclaimed.Load(); got != 0 {
		t.Fatalf("unreclaimed = %d after adopting drain, want 0", got)
	}
}

func TestOwnerCancelsQuarantine(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	defer func() {
		h.Exit()
		h.Unregister()
	}()

	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed")
	}
	// The owner wakes up: Enter resolves the quarantine via the owner-wins
	// CAS, so the reaper's confirmation must fail.
	h.Enter()
	if h.TryBeginReap() {
		t.Fatal("TryBeginReap succeeded after the owner cancelled the quarantine")
	}
	if h.Gen() != 0 {
		t.Fatal("cancelling a quarantine must not count as a resurrection")
	}
}

func TestQuarantineRefusedInsideCS(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	h.Enter()
	if h.TryQuarantine() {
		t.Fatal("TryQuarantine succeeded inside a live critical section")
	}
	h.Exit()
	h.Unregister()
}

func TestExitPreservesReaperPhases(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed")
	}
	// A racing Exit (e.g. a slow owner finishing a section the reaper
	// already gave up on) must not smash the reaper-owned word.
	h.Exit()
	if ph, _ := unpack(h.status.Load()); ph != phaseQuarantined {
		t.Fatalf("Exit overwrote quarantine: phase = %d", ph)
	}
	// The owner's next Enter still resolves it.
	h.Enter()
	if ph, _ := unpack(h.status.Load()); ph != phaseInCs {
		t.Fatalf("Enter did not resolve quarantine: phase = %d", ph)
	}
	h.Exit()
	h.Unregister()
}

func TestResurrectionAfterReap(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := leaseDomain(t)
	h := d.Register()
	retireOne(t, pool, cache, h)

	hooked := false
	h.SetResurrect(func() { hooked = true })

	if !h.TryQuarantine() || !h.TryBeginReap() {
		t.Fatal("reap protocol refused an idle handle")
	}
	h.AdoptBatch()
	h.FinishReap()
	d.RemoveAll([]*Handle{h})

	// The owner was merely slow, not dead: its next Enter resurrects.
	h.Enter()
	if !hooked {
		t.Fatal("resurrect hook did not run")
	}
	if h.Gen() != 1 {
		t.Fatalf("gen = %d after one resurrection, want 1", h.Gen())
	}
	if d.handles.Len() != 1 {
		t.Fatalf("registry has %d handles after resurrection, want 1", d.handles.Len())
	}
	if len(h.batch) != 0 {
		t.Fatal("resurrected handle inherited a batch the reaper adopted")
	}
	h.Exit()
	h.Unregister()
	if d.handles.Len() != 0 {
		t.Fatal("unregister after resurrection left the handle registered")
	}
}

func TestUnregisterAfterReapIsNoop(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	if !h.TryQuarantine() || !h.TryBeginReap() {
		t.Fatal("reap protocol refused an idle handle")
	}
	h.AdoptBatch()
	h.FinishReap()
	d.RemoveAll([]*Handle{h})

	// A defer-ed Unregister finally firing on a reaped handle must not
	// double-remove or flush adopted state.
	h.Unregister()
	if d.handles.Len() != 0 {
		t.Fatalf("registry has %d handles, want 0", d.handles.Len())
	}
	if got := d.population.Peak(); got != 1 {
		t.Fatalf("population peak = %d, want 1", got)
	}
}

func TestLeaseStampsFollowClock(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	defer h.Unregister()

	now := time.Now().UnixNano()
	for i, touch := range []func(){
		func() { h.Enter(); h.Exit() },
		func() { h.Enter(); h.Poll(); h.Exit() },
		func() { h.StampLease() },
		func() { h.Barrier() },
	} {
		now += int64(time.Second)
		d.PublishClock(now)
		touch()
		if got := h.Lease(); got != now {
			t.Fatalf("touch %d: lease = %d, want published clock %d", i, got, now)
		}
	}
}

func TestPollReportsReaperPhases(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	h.Enter()
	if !h.Poll() {
		t.Fatal("Poll failed in a healthy critical section")
	}
	h.Exit()
	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed")
	}
	// A traversal that somehow observes a reaper phase must roll back to
	// Enter, which resolves it.
	if h.Poll() {
		t.Fatal("Poll passed while quarantined")
	}
	if _, mustRollback := h.Mask(func() {}); !mustRollback {
		t.Fatal("Mask must demand rollback while quarantined")
	}
	if h.Refresh() {
		t.Fatal("Refresh succeeded while quarantined")
	}
	h.Enter()
	h.Exit()
	h.Unregister()
}
