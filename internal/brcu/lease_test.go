package brcu

import (
	"sync"
	"testing"
	"time"

	"github.com/smrgo/hpbrcu/internal/alloc"
)

// leaseDomain builds a domain with leases on and a large batch so deferred
// tasks stay local (the interesting state for adoption).
func leaseDomain(t *testing.T) *Domain {
	t.Helper()
	d := NewDomain(nil, WithMaxLocalTasks(1024), WithForceThreshold(1000000))
	d.EnableLeases()
	return d
}

func TestQuarantineReapAdoptsBatch(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := leaseDomain(t)
	victim := d.Register()
	for i := 0; i < 5; i++ {
		retireOne(t, pool, cache, victim)
	}
	if len(victim.batch) != 5 {
		t.Fatalf("victim batch = %d, want 5 local tasks", len(victim.batch))
	}

	// Two-phase reap: quarantine, confirm, adopt, publish.
	if !victim.TryQuarantine() {
		t.Fatal("TryQuarantine failed on an out-of-CS handle")
	}
	if !victim.TryQuarantine() {
		t.Fatal("re-quarantine of a quarantined handle must succeed (re-arm)")
	}
	if !victim.TryBeginReap() {
		t.Fatal("TryBeginReap failed on a quarantined handle")
	}
	if n := victim.AdoptBatch(); n != 5 {
		t.Fatalf("AdoptBatch = %d, want 5", n)
	}
	if victim.batch != nil {
		t.Fatal("victim batch not detached after adoption")
	}
	if got := d.pendingBatches(); got != 1 {
		t.Fatalf("pendingBatches = %d, want 1 adopted batch", got)
	}
	victim.FinishReap()
	d.RemoveAll([]*Handle{victim})
	if d.handles.Len() != 0 {
		t.Fatalf("registry has %d handles after RemoveAll", d.handles.Len())
	}

	// A fresh handle's barrier drains the adopted garbage: the leak is
	// recovered without the dead owner's cooperation.
	drainer := d.Register()
	drainer.Barrier()
	drainer.Unregister()
	if got := d.rec.Unreclaimed.Load(); got != 0 {
		t.Fatalf("unreclaimed = %d after adopting drain, want 0", got)
	}
}

func TestOwnerCancelsQuarantine(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	defer func() {
		h.Exit()
		h.Unregister()
	}()

	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed")
	}
	// The owner wakes up: Enter resolves the quarantine via the owner-wins
	// CAS, so the reaper's confirmation must fail.
	h.Enter()
	if h.TryBeginReap() {
		t.Fatal("TryBeginReap succeeded after the owner cancelled the quarantine")
	}
	if h.Gen() != 0 {
		t.Fatal("cancelling a quarantine must not count as a resurrection")
	}
}

func TestQuarantineRefusedInsideCS(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	h.Enter()
	if h.TryQuarantine() {
		t.Fatal("TryQuarantine succeeded inside a live critical section")
	}
	h.Exit()
	h.Unregister()
}

func TestExitPreservesReaperPhases(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed")
	}
	// A racing Exit (e.g. a slow owner finishing a section the reaper
	// already gave up on) must not smash the reaper-owned word.
	h.Exit()
	if ph, _ := unpack(h.status.Load()); ph != phaseQuarantined {
		t.Fatalf("Exit overwrote quarantine: phase = %d", ph)
	}
	// The owner's next Enter still resolves it.
	h.Enter()
	if ph, _ := unpack(h.status.Load()); ph != phaseInCs {
		t.Fatalf("Enter did not resolve quarantine: phase = %d", ph)
	}
	h.Exit()
	h.Unregister()
}

func TestResurrectionAfterReap(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := leaseDomain(t)
	h := d.Register()
	retireOne(t, pool, cache, h)

	hooked := false
	h.SetResurrect(func() { hooked = true })

	if !h.TryQuarantine() || !h.TryBeginReap() {
		t.Fatal("reap protocol refused an idle handle")
	}
	h.AdoptBatch()
	h.FinishReap()
	d.RemoveAll([]*Handle{h})

	// The owner was merely slow, not dead: its next Enter resurrects.
	h.Enter()
	if !hooked {
		t.Fatal("resurrect hook did not run")
	}
	if h.Gen() != 1 {
		t.Fatalf("gen = %d after one resurrection, want 1", h.Gen())
	}
	if d.handles.Len() != 1 {
		t.Fatalf("registry has %d handles after resurrection, want 1", d.handles.Len())
	}
	if len(h.batch) != 0 {
		t.Fatal("resurrected handle inherited a batch the reaper adopted")
	}
	h.Exit()
	h.Unregister()
	if d.handles.Len() != 0 {
		t.Fatal("unregister after resurrection left the handle registered")
	}
}

func TestUnregisterAfterReapBalancesBooks(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	if !h.TryQuarantine() || !h.TryBeginReap() {
		t.Fatal("reap protocol refused an idle handle")
	}
	h.AdoptBatch()
	d.RemoveAll([]*Handle{h})
	h.FinishReap()

	// A defer-ed Unregister finally firing on a reaped handle resurrects
	// it (BeginMut) and then removes it — the registry and the population
	// gauge must come out balanced, not double-decremented.
	h.Unregister()
	if d.handles.Len() != 0 {
		t.Fatalf("registry has %d handles, want 0", d.handles.Len())
	}
	if got := d.population.Peak(); got != 1 {
		t.Fatalf("population peak = %d, want 1", got)
	}
	if got := d.population.Load(); got != 0 {
		t.Fatalf("population = %d after unregister, want 0", got)
	}
}

func TestBeginMutBlocksQuarantine(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	defer h.Unregister()

	if !h.BeginMut() {
		t.Fatal("BeginMut failed to claim on an idle handle")
	}
	// Mid-mutation the handle must be un-quarantinable: a reaper arriving
	// while the batch is being appended/flushed could otherwise adopt the
	// very slice the owner is writing.
	if h.TryQuarantine() {
		t.Fatal("TryQuarantine succeeded during BeginMut")
	}
	if h.BeginMut() {
		t.Fatal("nested BeginMut claimed twice")
	}
	h.EndMut()
	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed after EndMut")
	}
	// Leave the handle clean for the deferred Unregister.
	h.Enter()
	h.Exit()
}

func TestBeginMutResolvesQuarantine(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	defer h.Unregister()

	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed")
	}
	// The owner's next batch mutation cancels the quarantine on its way
	// into InMut, exactly like Enter would.
	if !h.BeginMut() {
		t.Fatal("BeginMut failed on a quarantined handle")
	}
	if h.TryBeginReap() {
		t.Fatal("TryBeginReap succeeded after BeginMut cancelled the quarantine")
	}
	h.EndMut()
	if h.Gen() != 0 {
		t.Fatal("cancelling a quarantine via BeginMut must not count as a resurrection")
	}
}

func TestCancelReapLeavesOwnerUntouched(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()

	if !h.TryQuarantine() || !h.TryBeginReap() {
		t.Fatal("reap protocol refused an idle handle")
	}
	if !h.BatchEmpty() {
		t.Fatal("fresh handle reports a non-empty batch")
	}
	h.CancelReap()
	if ph, _ := unpack(h.status.Load()); ph != phaseOut {
		t.Fatalf("phase = %d after CancelReap, want Out", ph)
	}
	// No resurrection happened: same generation, same registration.
	h.Enter()
	h.Exit()
	if h.Gen() != 0 {
		t.Fatalf("gen = %d after a cancelled reap, want 0", h.Gen())
	}
	if d.handles.Len() != 1 {
		t.Fatalf("registry has %d handles, want 1", d.handles.Len())
	}
	h.Unregister()
}

// TestDeferReapRace drives an owner continuously deferring (with flushes)
// against a scripted reaper hammering the full reap protocol with no
// lease patience at all, under the race detector: the InMut phase must
// serialize every batch mutation against adoption, and the
// Remove-before-FinishReap order must keep the registry and the
// population gauge balanced through any interleaving of reap,
// resurrection, and the final Unregister.
func TestDeferReapRace(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil, WithMaxLocalTasks(4), WithForceThreshold(1000000))
	d.EnableLeases()
	h := d.Register()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the reaper: quarantine → confirm → adopt → remove → publish
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if h.TryQuarantine() && h.TryBeginReap() {
				if h.BatchEmpty() {
					h.CancelReap()
					continue
				}
				h.AdoptBatch()
				d.RemoveAll([]*Handle{h})
				h.FinishReap()
			}
		}
	}()

	const retires = 2000
	for i := 0; i < retires; i++ {
		retireOne(t, pool, cache, h)
	}
	close(done)
	wg.Wait()
	h.Unregister()

	if got := d.population.Load(); got != 0 {
		t.Fatalf("population = %d after the storm, want 0", got)
	}
	if got := d.handles.Len(); got != 0 {
		t.Fatalf("registry has %d handles after the storm, want 0", got)
	}

	// Everything the owner retired is either already reclaimed or parked
	// in the global task set (flushed or adopted); a fresh drainer must be
	// able to recover all of it.
	drainer := d.Register()
	drainer.Barrier()
	drainer.Unregister()
	if got := d.rec.Unreclaimed.Load(); got != 0 {
		t.Fatalf("unreclaimed = %d after the drain, want 0", got)
	}
	if got := d.rec.Retired.Load(); got != retires {
		t.Fatalf("retired = %d, want %d", got, retires)
	}
	if got := d.rec.Reclaimed.Load(); got != retires {
		t.Fatalf("reclaimed = %d, want %d", got, retires)
	}
}

func TestLeaseStampsFollowClock(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	defer h.Unregister()

	now := time.Now().UnixNano()
	for i, touch := range []func(){
		func() { h.Enter(); h.Exit() },
		func() { h.Enter(); h.Poll(); h.Exit() },
		func() { h.StampLease() },
		func() { h.Barrier() },
	} {
		now += int64(time.Second)
		d.PublishClock(now)
		touch()
		if got := h.Lease(); got != now {
			t.Fatalf("touch %d: lease = %d, want published clock %d", i, got, now)
		}
	}
}

func TestPollReportsReaperPhases(t *testing.T) {
	d := leaseDomain(t)
	h := d.Register()
	h.Enter()
	if !h.Poll() {
		t.Fatal("Poll failed in a healthy critical section")
	}
	h.Exit()
	if !h.TryQuarantine() {
		t.Fatal("TryQuarantine failed")
	}
	// A traversal that somehow observes a reaper phase must roll back to
	// Enter, which resolves it.
	if h.Poll() {
		t.Fatal("Poll passed while quarantined")
	}
	if _, mustRollback := h.Mask(func() {}); !mustRollback {
		t.Fatal("Mask must demand rollback while quarantined")
	}
	if h.Refresh() {
		t.Fatal("Refresh succeeded while quarantined")
	}
	h.Enter()
	h.Exit()
	h.Unregister()
}
