package fault

import "testing"

// TestDeterministicSchedule: the fire decision for arrival n is a pure
// function of (seed, site, n) — two injectors with the same seed agree
// arrival by arrival, and a different seed produces a different schedule.
func TestDeterministicSchedule(t *testing.T) {
	plan := Plan{Period: 4}
	mk := func(seed uint64) *Injector {
		cfg := Config{Seed: seed}
		cfg.Plans[SitePoll] = plan
		return New(cfg)
	}
	a, b, c := mk(1), mk(1), mk(2)
	var fa, fb, fc []bool
	for i := 0; i < 512; i++ {
		fa = append(fa, a.fire(SitePoll))
		fb = append(fb, b.fire(SitePoll))
		fc = append(fc, c.fire(SitePoll))
	}
	diff := false
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
		diff = diff || fa[i] != fc[i]
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules (hash is degenerate)")
	}
	if a.Fired(SitePoll) == 0 {
		t.Fatal("period-4 plan never fired in 512 arrivals")
	}
	if got := a.Arrivals(SitePoll); got != 512 {
		t.Fatalf("arrivals = %d, want 512", got)
	}
}

// TestCooldownSuppressesConsecutiveFires: with Period 1 (fire always) and
// Cooldown k, fires are at least k+1 arrivals apart.
func TestCooldownSuppressesConsecutiveFires(t *testing.T) {
	cfg := Config{Seed: 7}
	cfg.Plans[SiteDrainSkip] = Plan{Period: 1, Cooldown: 3}
	inj := New(cfg)
	last := -100
	for i := 0; i < 64; i++ {
		if inj.fire(SiteDrainSkip) {
			if i-last <= 3 {
				t.Fatalf("fires at arrivals %d and %d violate cooldown 3", last, i)
			}
			last = i
		}
	}
	if inj.Fired(SiteDrainSkip) == 0 {
		t.Fatal("always-fire plan never fired")
	}
}

// TestDisabledSiteAndInactiveGate: a zero plan never fires, and Fire with
// no active injector is a safe no-op.
func TestDisabledSiteAndInactiveGate(t *testing.T) {
	inj := New(Config{Seed: 3})
	for i := 0; i < 100; i++ {
		if inj.fire(SiteShield) {
			t.Fatal("zero plan fired")
		}
	}
	if On {
		t.Fatal("fault gate open with no Activate")
	}
	if Fire(SitePoll) {
		t.Fatal("Fire fired without an active injector")
	}
}

// TestActivateDeactivate round-trips the global gate.
func TestActivateDeactivate(t *testing.T) {
	cfg := Config{Seed: 9}
	cfg.Plans[SitePoll] = Plan{Period: 1}
	inj := New(cfg)
	Activate(inj)
	defer Deactivate()
	if !On {
		t.Fatal("gate closed after Activate")
	}
	if !Fire(SitePoll) {
		t.Fatal("always-fire plan did not fire through the global gate")
	}
	Deactivate()
	if On || Fire(SitePoll) {
		t.Fatal("gate still open after Deactivate")
	}
	if inj.TotalFired() != 1 {
		t.Fatalf("TotalFired = %d, want 1", inj.TotalFired())
	}
}
