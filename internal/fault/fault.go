// Package fault is the deterministic fault-injection layer behind the
// chaos harness (internal/chaos, `smrbench chaos`). Injection points are
// compiled into the hot paths of internal/brcu, internal/core, internal/hp
// and internal/alloc behind a single package-level boolean, so a disabled
// build costs one predictable branch per site and nothing else:
//
//	if fault.On {
//	        fault.Fire(fault.SitePoll)
//	}
//
// # Determinism model
//
// Whether the n-th arrival at a site fires is a pure function of
// (seed, site, n): arrivals are numbered by a per-site atomic counter and
// the decision hashes the triple through splitmix64. The same seed
// therefore always produces the same fault schedule per site-arrival
// sequence. Goroutine interleaving still varies between runs — the chaos
// harness asserts invariants (no poison hits, bound compliance, the
// per-key reference model), never exact schedules.
//
// Each site plan can carry a cooldown: after a fire, the next Cooldown
// arrivals at that site are exempt. This is what keeps hostile schedules
// live — e.g. a forced-rollback plan whose cooldown exceeds the
// checkpoint distance guarantees every traversal eventually completes a
// checkpoint between two faults, and a drain-skip plan with a cooldown of
// one can never suppress two consecutive drains (which bounds the extra
// garbage it can pile up to one epoch's worth of batches).
//
// # Concurrency contract
//
// On and the active injector may only change while no goroutine is inside
// an injection point: Activate before the workers start, Deactivate after
// they have joined (and after any BRCU watchdog has been stopped — the
// watchdog's drain path crosses injection sites too). This mirrors the
// atomicx.YieldPeriod contract and keeps the gate a plain, race-free load.
package fault

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrInjectedPanic is the value SitePanic call sites panic with. The chaos
// harness recognizes it to tell an injected panic (expected, op aborted)
// from a genuine bug escaping user code (an invariant violation).
var ErrInjectedPanic = errors.New("fault: injected panic")

// Site identifies one injection point. The inventory (DESIGN.md §7):
type Site uint8

const (
	// SitePoll stalls inside brcu.Handle.Poll — a neutralization poll
	// point; the stall widens the window in which an already-neutralized
	// thread keeps running.
	SitePoll Site = iota
	// SiteShield stalls in hp.Shield.Protect/ProtectSlot immediately
	// before the protection is published — the classic HP race window
	// between loading a reference and shielding it.
	SiteShield
	// SiteMaskEnter stalls in brcu.Handle.Mask before the InCs→InRm entry
	// CAS, giving neutralizers time to land first.
	SiteMaskEnter
	// SiteMaskExit stalls in brcu.Handle.Mask between the masked body and
	// the InRm→InCs exit CAS — the paper's Mask/SignalHandler race.
	SiteMaskExit
	// SiteMaskAbort self-neutralizes the thread at the SiteMaskExit
	// location, deterministically forcing the "signal landed mid-region"
	// branch of Algorithm 6.
	SiteMaskAbort
	// SiteStepRollback self-neutralizes the thread at a traversal step in
	// core.Traverse, forcing a rollback to the last complete checkpoint at
	// an arbitrary point of the walk.
	SiteStepRollback
	// SiteAdvanceStorm exhausts the signalling budget in
	// brcu.flushAndAdvance, so the advance neutralizes every laggard
	// immediately (a neutralization storm).
	SiteAdvanceStorm
	// SiteDrainSkip suppresses one executeExpired drain in brcu, delaying
	// execution of expired deferred batches by (at least) one advance.
	SiteDrainSkip
	// SiteAllocStall stalls in alloc.Pool.Alloc before the slot is taken.
	SiteAllocStall
	// SiteAllocExhaust shrinks the allocator refill batch to a single
	// slot, maximizing freelist pressure and slot-reuse (ABA) churn.
	SiteAllocExhaust
	// SiteFreeStall stalls in alloc.Pool.FreeSlot/FreeLocal after the slot
	// is poisoned but before it reaches a freelist.
	SiteFreeStall
	// SiteLeak kills a chaos worker mid-operation: the worker returns
	// without Unregister or Barrier, abandoning its registered handle,
	// shields, deferred batch and retired list — the goroutine-death case
	// the lease reaper (internal/reap) exists to recover. Fired by the
	// chaos harness between operations, not from library hot paths.
	SiteLeak
	// SitePanic panics with ErrInjectedPanic from inside a critical
	// section — at a traversal step in core.Traverse and just inside an
	// abort-masked region in brcu.Handle.Mask, in both cases before any
	// shared-memory mutation — exercising the recover barrier's abort
	// path. The caller panics; this package only decides.
	SitePanic
	// SitePoolLeak makes a facade operation leak its pooled handle
	// checkout: the return path is skipped, simulating a borrower
	// goroutine that died (or wedged) while holding a checked-out handle.
	// The pool's leak sweep — backed by the lease reaper — must retire the
	// slot and restore the capacity. Fired from the facade checkin path.
	SitePoolLeak
	// SiteNetRead stalls the cache server's per-connection request-read
	// path after a complete request line arrived — a slow or wedged
	// client goroutine holding server-side resources mid-protocol.
	SiteNetRead
	// SiteNetWrite stalls the cache server's reply-write path before the
	// flush — the slow-reader case, where the peer's receive window (or
	// its unread socket buffer) backs pressure into the server.
	SiteNetWrite
	// SiteNetDrop closes the cache server's side of a connection right
	// after a reply — the peer observes a mid-stream disconnect, and the
	// server's teardown path must still run its normal checkin/close
	// sequence.
	SiteNetDrop
	// SiteShardStall stalls one shard's maintenance tick — the lease
	// reaper's and the BRCU watchdog's periodic goroutines — simulating a
	// wedged per-shard janitor. The site is shard-targeted: the plan's
	// Shard field selects which shard's ticks fire, so a sharded domain
	// can demonstrate fault isolation (the wedged shard is quarantined,
	// the others keep reclaiming). Fired through FireShard from the
	// maintenance goroutines, which are long-lived and therefore use the
	// dynamic (atomic) gate rather than the plain fault.On branch.
	SiteShardStall

	// NumSites is the number of injection sites.
	NumSites
)

var siteNames = [NumSites]string{
	"poll", "shield", "mask-enter", "mask-exit", "mask-abort",
	"step-rollback", "advance-storm", "drain-skip",
	"alloc-stall", "alloc-exhaust", "free-stall", "leak", "panic",
	"pool-leak", "net-read", "net-write", "net-drop", "shard-stall",
}

// String returns the site's name.
func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return "site?"
}

// Plan configures one site. The zero Plan disables the site.
type Plan struct {
	// Period is the mean number of arrivals between fires; arrival n
	// fires when hash(seed, site, n) mod Period == 0. Zero disables the
	// site; one fires on every (non-cooldown) arrival.
	Period uint64
	// Cooldown exempts that many arrivals after each fire. It is the
	// liveness knob: see the package comment.
	Cooldown uint64
	// StallYields is how many runtime.Gosched() calls a fire performs
	// (the "configurable duration" of a stall, measured in scheduler
	// yields so runs stay wall-clock independent).
	StallYields int
	// Shard restricts shard-targeted sites (fired through FireShard) to
	// one shard id; arrivals from other shards never fire and do not
	// advance the site's arrival counter. Negative targets every shard.
	// The zero value targets shard 0 — the natural victim for wedge
	// schedules — and is ignored entirely by Fire/FireDyn call sites.
	Shard int
}

// Config seeds an Injector.
type Config struct {
	Seed  uint64
	Plans [NumSites]Plan
}

type siteState struct {
	arrivals atomic.Uint64
	fired    atomic.Uint64
	// gate is the first arrival index allowed to fire again after a
	// cooldown. Races on it are benign: a lost update only mistimes a
	// cooldown by one fire, never the determinism of the hash decision.
	gate atomic.Uint64
	// disabled suppresses the site while set. Unlike the plans (immutable
	// after Activate), it is atomic so a test can switch one site off
	// mid-run — e.g. un-wedge a stalled shard to observe recovery —
	// without violating the Activate/Deactivate quiescence contract.
	disabled atomic.Bool
}

// Injector is one activated fault schedule. Its methods are safe for
// concurrent use.
type Injector struct {
	seed  uint64
	plans [NumSites]Plan
	sites [NumSites]siteState
}

// New builds an injector from a config.
func New(cfg Config) *Injector {
	return &Injector{seed: cfg.Seed, plans: cfg.Plans}
}

// On gates every injection point. Hot paths read it as a single
// predictable branch; see the package comment for when it may change.
var On bool

var active *Injector

// activeDyn mirrors active for FireDyn's atomic readers; see below.
var activeDyn atomic.Pointer[Injector]

// Activate installs inj and opens the gate. It must not run while any
// worker is inside an injection point.
func Activate(inj *Injector) {
	active = inj
	On = inj != nil
	activeDyn.Store(inj)
}

// Deactivate closes the gate. Same contract as Activate.
func Deactivate() {
	On = false
	active = nil
	activeDyn.Store(nil)
}

// Fire records one arrival at site s, performs the site's stall if the
// fault fires, and reports whether it fired. It is a no-op returning false
// when no injector is active; callers must still guard with fault.On to
// keep the disabled cost to one branch.
func Fire(s Site) bool {
	inj := active
	if inj == nil {
		return false
	}
	return inj.fire(s)
}

// FireDyn is Fire for callers that cannot honour the Activate/Deactivate
// quiescence contract — long-lived goroutines like the cache server's
// connection handlers, which are accepted and torn down while injection
// schedules come and go. It reads the gate and the injector through one
// atomic pointer instead of the plain On/active pair, trading a single
// atomic load per arrival for race-freedom. Library hot paths keep the
// plain-branch Fire; dynamic service paths use FireDyn.
func FireDyn(s Site) bool {
	inj := activeDyn.Load()
	if inj == nil {
		return false
	}
	return inj.fire(s)
}

// FireShard is FireDyn for shard-targeted sites: the arrival only counts
// (and can only fire) when the plan's Shard selector matches the calling
// shard. Like FireDyn it reads the injector through the atomic pointer,
// because its callers — per-shard reaper and watchdog goroutines — are
// long-lived and cross injection points while schedules come and go.
func FireShard(s Site, shard int) bool {
	inj := activeDyn.Load()
	if inj == nil {
		return false
	}
	p := &inj.plans[s]
	if p.Shard >= 0 && p.Shard != shard {
		return false
	}
	return inj.fire(s)
}

// SetSiteEnabled switches one site on or off while the injector stays
// active. Plans are immutable after Activate, so this atomic override is
// the only way to change a schedule mid-run; it exists for phased chaos
// scenarios — wedge a shard, watch it quarantine, then re-enable its
// janitors and watch it recover — where Deactivate would race with the
// long-lived goroutines still crossing plain fault.On sites.
func (inj *Injector) SetSiteEnabled(s Site, enabled bool) {
	inj.sites[s].disabled.Store(!enabled)
}

func (inj *Injector) fire(s Site) bool {
	p := &inj.plans[s]
	if p.Period == 0 || inj.sites[s].disabled.Load() {
		return false
	}
	st := &inj.sites[s]
	n := st.arrivals.Add(1)
	if n < st.gate.Load() {
		return false
	}
	if p.Period > 1 && mix(inj.seed, uint64(s), n)%p.Period != 0 {
		return false
	}
	if p.Cooldown > 0 {
		st.gate.Store(n + 1 + p.Cooldown)
	}
	st.fired.Add(1)
	for i := 0; i < p.StallYields; i++ {
		runtime.Gosched()
	}
	return true
}

// mix is splitmix64 over the (seed, site, arrival) triple.
func mix(seed, site, n uint64) uint64 {
	x := seed ^ (site+1)*0x9E3779B97F4A7C15 ^ n*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Arrivals returns how many times site s was reached.
func (inj *Injector) Arrivals(s Site) uint64 { return inj.sites[s].arrivals.Load() }

// Fired returns how many times site s fired.
func (inj *Injector) Fired(s Site) uint64 { return inj.sites[s].fired.Load() }

// TotalFired sums fires across all sites.
func (inj *Injector) TotalFired() uint64 {
	var t uint64
	for s := Site(0); s < NumSites; s++ {
		t += inj.sites[s].fired.Load()
	}
	return t
}
