// Package hp implements hazard pointers (Michael 2002/2004), Algorithm 1 of
// the paper: per-pointer Shields, validated protection (ProtectFrom), batch
// Retire, and shield-scanning Reclaim.
//
// HP is both a baseline scheme in the evaluation and the fine-grained half
// of HP-RCU/HP-BRCU, which reuse Shield and Reclaim unchanged and only
// re-implement Retire (two-step retirement, Algorithm 4).
//
// Go's sync/atomic operations are sequentially consistent, which provides
// the fence(SC) required between publishing a protection and re-reading the
// source for validation (Algorithm 1 line 7) and between taking the retired
// list and scanning shields (line 13).
package hp

import (
	"sync"
	"sync/atomic"

	"github.com/smrgo/hpbrcu/internal/alloc"
	"github.com/smrgo/hpbrcu/internal/atomicx"
	"github.com/smrgo/hpbrcu/internal/fault"
	"github.com/smrgo/hpbrcu/internal/obs"
	"github.com/smrgo/hpbrcu/internal/registry"
	"github.com/smrgo/hpbrcu/internal/stats"
)

// DefaultScanThreshold is the per-thread retired-node count that triggers a
// reclamation pass. The paper's evaluation triggers reclamation per 128
// retirements for all schemes (§6).
const DefaultScanThreshold = 128

// Domain owns the shield registry and reclamation statistics for one data
// structure instance.
type Domain struct {
	scanThreshold int
	rec           *stats.Reclamation
	allocMode     alloc.Mode

	handles registry.Registry[Handle]

	// shields tracks the number of currently registered shields and its
	// peak — the H term of the §5 bound 2GN+GN²+H, taken from the real
	// registry instead of a per-structure magic constant.
	shields stats.Gauge

	// orphans holds retired nodes abandoned by unregistered handles.
	orphanMu sync.Mutex
	orphans  []alloc.Retired
}

// Option configures a Domain.
type Option func(*Domain)

// WithScanThreshold overrides the per-thread retire batch size.
func WithScanThreshold(n int) Option {
	return func(d *Domain) {
		if n > 0 {
			d.scanThreshold = n
		}
	}
}

// WithAllocator selects the reclamation granularity data structures use
// for pools bound to this domain (alloc.ModePool by default). Constructors
// read it back with AllocMode and wire arena pools via BindPool.
func WithAllocator(m alloc.Mode) Option {
	return func(d *Domain) { d.allocMode = m }
}

// NewDomain creates a hazard-pointer domain reporting into rec. A nil rec
// allocates a private one.
func NewDomain(rec *stats.Reclamation, opts ...Option) *Domain {
	if rec == nil {
		rec = &stats.Reclamation{}
	}
	d := &Domain{scanThreshold: DefaultScanThreshold, rec: rec}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Stats returns the domain's reclamation statistics.
func (d *Domain) Stats() *stats.Reclamation { return d.rec }

// AllocMode reports the allocator mode configured with WithAllocator.
func (d *Domain) AllocMode() alloc.Mode { return d.allocMode }

// BindPool mirrors an arena-mode pool's segment counters into the domain's
// stats. No grace source is installed: HP frees a node only after a shield
// scan proves it unprotected, so completed segments recycle immediately on
// that per-node guarantee. No-op for pool-mode pools.
func (d *Domain) BindPool(p alloc.Binding) {
	if p.Mode() != alloc.ModeArena {
		return
	}
	p.SetRecorder(d.rec)
}

// Shields returns the number of currently registered shields.
func (d *Domain) Shields() int64 { return d.shields.Load() }

// ShieldsPeak returns the highest number of simultaneously registered
// shields observed — the H to evaluate the §5 bound with after a run.
func (d *Domain) ShieldsPeak() int64 { return d.shields.Peak() }

// Handle is a thread's participation record. Handles are not safe for
// concurrent use; each worker registers its own.
type Handle struct {
	d       *Domain
	shields atomic.Pointer[[]*Shield] // owner appends; reclaimers scan
	retired []alloc.Retired
	scratch map[uint64]int // reused protected-slot multiset keyed by slot
	trace   *obs.Trace     // reclaim events; nil with observability off

	// scanAt is the retired-list length that triggers the next Reclaim:
	// the survivors of the last scan plus the scan threshold. A fixed
	// `len(retired) >= threshold` check degenerates into a full shield
	// scan per retire once `threshold` nodes are pinned by live shields
	// (each scan keeps them all and the very next retire re-triggers);
	// the moving watermark always buys a full batch of new retirements
	// between scans. Survivors are capped by the live-shield count, so
	// scanAt ≤ H + threshold and the §5 bound 2GN+GN²+H still holds.
	// Owner-goroutine-only.
	scanAt int

	// reaped is set by Domain.Adopt when the lease reaper takes over this
	// handle's state, and cleared by Readopt if the owner resurrects. It
	// makes a late Unregister by a slow-but-alive owner a no-op instead of
	// a double release of shields already deducted from the gauge.
	reaped atomic.Bool
}

// Register adds a thread to the domain.
func (d *Domain) Register() *Handle {
	h := &Handle{d: d, scratch: make(map[uint64]int), scanAt: d.scanThreshold}
	if obs.On {
		h.trace = obs.NewTrace("hp")
	}
	empty := []*Shield{}
	h.shields.Store(&empty)
	d.handles.Add(h)
	return h
}

// Unregister removes the thread. Its shields are cleared and any still
// pending retired nodes are handed to the domain for later reclamation.
// Unregistering a handle the reaper already adopted is a no-op.
func (h *Handle) Unregister() {
	if h.reaped.Load() {
		return
	}
	// One snapshot for both the clear loop and the gauge: the two loads
	// could otherwise disagree if this handle's owner leaked mid-NewShield
	// and the slice grew between them.
	shields := *h.shields.Load()
	for _, s := range shields {
		s.Clear()
	}
	d := h.d
	d.shields.Add(-int64(len(shields)))
	empty := []*Shield{}
	h.shields.Store(&empty) // an unregistered handle must not keep live shields
	if len(h.retired) > 0 {
		d.orphanMu.Lock()
		d.orphans = append(d.orphans, h.retired...)
		d.orphanMu.Unlock()
		h.retired = nil
	}
	d.handles.Remove(h)
}

// Adopt is the reaper-side Unregister for a handle whose owner died: the
// shield values are cleared (releasing their protections) but the slice is
// kept — data-structure handles hold *Shield pointers created at Register,
// and a resurrecting owner reuses them — and the retired list moves to the
// domain's orphans, to be freed by the next Reclaim pass of any survivor.
// Returns the number of orphaned nodes. The caller (internal/core) holds
// the brcu reap protocol in phaseReaping, which excludes the owner.
func (d *Domain) Adopt(h *Handle) int {
	shields := *h.shields.Load()
	for _, s := range shields {
		s.Clear()
	}
	d.shields.Add(-int64(len(shields)))
	n := len(h.retired)
	if n > 0 {
		d.orphanMu.Lock()
		d.orphans = append(d.orphans, h.retired...)
		d.orphanMu.Unlock()
		h.retired = nil
	}
	h.reaped.Store(true)
	return n
}

// Empty reports whether this handle holds nothing a reaper would adopt:
// no retired nodes and no set shield. Reaper-only, called while the brcu
// Reaping phase excludes the owner (which is what makes reading the
// plain retired slice safe).
func (h *Handle) Empty() bool {
	if len(h.retired) > 0 {
		return false
	}
	for _, s := range *h.shields.Load() {
		if s.Get() != 0 {
			return false
		}
	}
	return true
}

// Readopt resurrects a reaped handle whose owner turned out to be alive:
// re-register and re-account the (cleared but still referenced) shields.
// No-op unless the handle was actually reaped.
func (h *Handle) Readopt() {
	if !h.reaped.CompareAndSwap(true, false) {
		return
	}
	h.d.shields.Add(int64(len(*h.shields.Load())))
	h.d.handles.Add(h)
}

// RemoveAll bulk-removes reaped handles from the registry with a single
// copy-on-write publication.
func (d *Domain) RemoveAll(hs []*Handle) {
	if len(hs) == 0 {
		return
	}
	set := make(map[*Handle]bool, len(hs))
	for _, h := range hs {
		set[h] = true
	}
	d.handles.RemoveWhere(func(h *Handle) bool { return set[h] })
}

// Shield is a single protection slot for a node (Algorithm 1). The zero
// value protects nothing.
//
// The slot is cache-line-padded: a bare shield is an 8-byte heap object,
// so the allocator's size classes would pack eight of them — typically
// owned by eight different threads — into one line, and every Protect
// store would invalidate the other seven owners' cached copies as well as
// every reclaimer mid-scan. Padding gives each shield a private line.
type Shield struct {
	slot atomicx.Padded
}

// NewShield creates and registers a shield owned by h.
func (h *Handle) NewShield() *Shield {
	s := &Shield{}
	old := *h.shields.Load()
	next := make([]*Shield, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	h.shields.Store(&next) // owner-only write; reclaimers read the snapshot
	h.d.shields.Add(1)
	return s
}

// Protect publishes protection of the node referred to by r (tag bits are
// ignored). The protection is not validated; see ProtectFrom.
func (s *Shield) Protect(r atomicx.Ref) {
	if fault.On {
		// Stall in the classic HP race window: the reference is loaded
		// but the protection not yet published.
		fault.Fire(fault.SiteShield)
	}
	s.slot.Store(r.Slot())
}

// ProtectSlot publishes protection of a raw slot index.
func (s *Shield) ProtectSlot(slot uint64) {
	if fault.On {
		fault.Fire(fault.SiteShield)
	}
	s.slot.Store(slot)
}

// Clear removes the protection.
func (s *Shield) Clear() { s.slot.Store(0) }

// Get returns the currently protected slot (0 when clear).
func (s *Shield) Get() uint64 { return s.slot.Load() }

// ProtectFrom loads a reference from src, protects it, and validates that
// src still holds the same reference (Algorithm 1, ProtectFrom). On return
// the referent — if non-nil — was reachable from src after the protection
// was published and therefore cannot be reclaimed while the shield holds.
//
// The returned reference is the validated value of src, tag bits included.
func ProtectFrom(s *Shield, src *atomicx.AtomicRef) atomicx.Ref {
	r := src.Load()
	for {
		s.Protect(r) // SC store; no explicit fence needed in Go
		v := src.Load()
		if v == r {
			return r
		}
		r = v
	}
}

// Retire schedules the node for reclamation once no shield protects it.
// Reclamation runs inline when the thread's batch reaches the scan
// threshold.
func (h *Handle) Retire(slot uint64, pool alloc.Freer) {
	h.d.rec.Retired.Inc()
	h.d.rec.Unreclaimed.Add(1)
	r := alloc.Retired{Slot: slot, Pool: pool}
	if obs.On {
		r.At = obs.Nanos()
	}
	h.retired = append(h.retired, r)
	if len(h.retired) >= h.scanAt {
		h.Reclaim()
	}
}

// RetireNoCount appends a node to the batch without touching the
// Retired/Unreclaimed statistics. HP-RCU/HP-BRCU count a node as retired at
// the two-step Retire (the RCU defer), not at the inner HP-Retire; this
// entry point lets them avoid double counting.
func (h *Handle) RetireNoCount(slot uint64, pool alloc.Freer) {
	h.RetireRecord(alloc.Retired{Slot: slot, Pool: pool})
}

// RetireRecord is RetireNoCount for a pre-built record; two-step
// retirement (internal/core) uses it so the outer Retire's obs timestamp
// survives into the inner HP batch and the retire→reclaim age histogram
// measures the full two-step lifetime.
func (h *Handle) RetireRecord(r alloc.Retired) {
	h.retired = append(h.retired, r)
	if len(h.retired) >= h.scanAt {
		h.Reclaim()
	}
}

// Reclaim scans all shields and frees every retired node that is not
// protected (Algorithm 1, Reclaim). Unprotected orphans from unregistered
// threads are adopted and freed too.
func (h *Handle) Reclaim() {
	d := h.d

	d.orphanMu.Lock()
	if len(d.orphans) > 0 {
		h.retired = append(h.retired, d.orphans...)
		d.orphans = nil
	}
	d.orphanMu.Unlock()

	// Snapshot every shield. SC loads order this scan after the retire
	// batch was taken, matching Algorithm 1 line 13's fence.
	protected := h.scratch
	clear(protected)
	for _, other := range d.handles.Snapshot() {
		for _, s := range *other.shields.Load() {
			if slot := s.Get(); slot != 0 {
				protected[slot]++
			}
		}
	}

	var now int64
	if obs.On {
		now = obs.Nanos()
	}
	kept := h.retired[:0]
	freed := int64(0)
	for _, r := range h.retired {
		if _, ok := protected[r.Slot]; ok {
			kept = append(kept, r)
			continue
		}
		r.Pool.FreeSlot(r.Slot)
		freed++
		if now != 0 && r.At != 0 {
			d.rec.ReclaimAgeNanos.Record(now - r.At)
		}
	}
	h.retired = kept
	// Move the watermark past the survivors so the next scan is earned by
	// a full batch of fresh retirements, not re-triggered per retire by
	// nodes still pinned under live shields (see scanAt).
	h.scanAt = len(kept) + d.scanThreshold
	if freed > 0 {
		d.rec.Reclaimed.Add(freed)
		d.rec.Unreclaimed.Add(-freed)
	}
	if obs.On {
		h.trace.Rec(obs.EvReclaim, freed)
	}
}

// PendingRetired reports the number of nodes this handle is still holding.
func (h *Handle) PendingRetired() int { return len(h.retired) }
