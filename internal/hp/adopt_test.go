package hp

import (
	"testing"

	"github.com/smrgo/hpbrcu/internal/alloc"
)

// TestAdoptReleasesShieldsAndOrphansRetired exercises the reaper-side
// Unregister: shield protections drop, the retired list becomes domain
// orphans, and a survivor's Reclaim frees the abandoned nodes.
func TestAdoptReleasesShieldsAndOrphansRetired(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil, WithScanThreshold(1024))
	dead := d.Register()
	live := d.Register()
	defer live.Unregister()

	slot, _ := pool.Alloc(cache)
	s := dead.NewShield()
	s.ProtectSlot(slot)
	pool.Hdr(slot).Retire()
	dead.Retire(slot, pool)

	if n := d.Adopt(dead); n != 1 {
		t.Fatalf("Adopt orphaned %d nodes, want 1", n)
	}
	if s.Get() != 0 {
		t.Fatal("Adopt must clear the dead handle's shield values")
	}
	if got := len(*dead.shields.Load()); got != 1 {
		t.Fatalf("Adopt dropped the shield slice (len %d); resurrecting owners reuse it", got)
	}
	if d.Shields() != 0 {
		t.Fatalf("shield gauge = %d after Adopt, want 0", d.Shields())
	}

	live.Reclaim()
	if pool.Hdr(slot).State() != alloc.StateFree {
		t.Fatal("survivor's Reclaim did not free the adopted orphan")
	}
	if got := d.Stats().Unreclaimed.Load(); got != 0 {
		t.Fatalf("unreclaimed = %d, want 0", got)
	}
}

func TestUnregisterAfterAdoptIsNoop(t *testing.T) {
	d := NewDomain(nil)
	h := d.Register()
	h.NewShield()
	d.Adopt(h)
	d.RemoveAll([]*Handle{h})

	// A late deferred Unregister by a slow-but-alive owner: the shields were
	// already deducted once; a second deduction would corrupt the H gauge.
	h.Unregister()
	if got := d.Shields(); got != 0 {
		t.Fatalf("shield gauge = %d after late Unregister, want 0", got)
	}
	if got := d.ShieldsPeak(); got != 1 {
		t.Fatalf("shield peak = %d, want 1", got)
	}
}

func TestReadoptRestoresShieldAccounting(t *testing.T) {
	d := NewDomain(nil)
	h := d.Register()
	s := h.NewShield()
	d.Adopt(h)
	d.RemoveAll([]*Handle{h})

	h.Readopt()
	if got := d.Shields(); got != 1 {
		t.Fatalf("shield gauge = %d after Readopt, want 1", got)
	}
	// The owner keeps using the same *Shield it got at registration.
	s.ProtectSlot(7)
	if s.Get() != 7 {
		t.Fatal("readopted shield does not protect")
	}
	// Readopt is idempotent: a second call must not double-account.
	h.Readopt()
	if got := d.Shields(); got != 1 {
		t.Fatalf("shield gauge = %d after double Readopt, want 1", got)
	}
	// Now that the handle is live again, Unregister releases normally.
	h.Unregister()
	if got := d.Shields(); got != 0 {
		t.Fatalf("shield gauge = %d after Unregister, want 0", got)
	}
}
