package hp

import (
	"sync"
	"testing"

	"github.com/smrgo/hpbrcu/internal/alloc"
	"github.com/smrgo/hpbrcu/internal/atomicx"
)

type node struct {
	key  int64
	next atomicx.AtomicRef
}

func TestShieldBlocksReclamation(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil, WithScanThreshold(1)) // reclaim on every retire
	h := d.Register()
	defer h.Unregister()

	slot, _ := pool.Alloc(cache)
	s := h.NewShield()
	s.ProtectSlot(slot)

	pool.Hdr(slot).Retire()
	h.Retire(slot, pool)

	if pool.Hdr(slot).State() == alloc.StateFree {
		t.Fatal("protected node was reclaimed")
	}
	if d.Stats().Unreclaimed.Load() != 1 {
		t.Fatalf("unreclaimed = %d, want 1", d.Stats().Unreclaimed.Load())
	}

	s.Clear()
	h.Reclaim()
	if pool.Hdr(slot).State() != alloc.StateFree {
		t.Fatal("unprotected node must be reclaimed")
	}
	if d.Stats().Unreclaimed.Load() != 0 {
		t.Fatalf("unreclaimed = %d, want 0", d.Stats().Unreclaimed.Load())
	}
}

func TestCrossThreadShieldVisible(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil, WithScanThreshold(1))
	reader := d.Register()
	reclaimer := d.Register()
	defer reader.Unregister()
	defer reclaimer.Unregister()

	slot, _ := pool.Alloc(cache)
	s := reader.NewShield()
	s.ProtectSlot(slot)

	pool.Hdr(slot).Retire()
	reclaimer.Retire(slot, pool)
	if pool.Hdr(slot).State() == alloc.StateFree {
		t.Fatal("another thread's shield was ignored")
	}
	s.Clear()
	reclaimer.Reclaim()
	if pool.Hdr(slot).State() != alloc.StateFree {
		t.Fatal("node not reclaimed after shield cleared")
	}
}

func TestProtectFromValidates(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil)
	h := d.Register()
	defer h.Unregister()

	slot, n := pool.Alloc(cache)
	n.key = 7
	var src atomicx.AtomicRef
	src.Store(atomicx.MakeRef(slot, 0))

	s := h.NewShield()
	r := ProtectFrom(s, &src)
	if r.Slot() != slot {
		t.Fatalf("ProtectFrom returned slot %d, want %d", r.Slot(), slot)
	}
	if s.Get() != slot {
		t.Fatal("shield does not hold the protected slot")
	}
}

// TestProtectFromRace exercises the protect/retire race: a writer keeps
// replacing the node behind src and retiring the old one; readers use
// ProtectFrom and must never observe a freed node.
func TestProtectFromRace(t *testing.T) {
	pool := alloc.NewPool[node]()
	d := NewDomain(nil, WithScanThreshold(4))

	var src atomicx.AtomicRef
	{
		c := pool.NewCache()
		slot, n := pool.Alloc(c)
		n.key = 0
		src.Store(atomicx.MakeRef(slot, 0))
	}

	const iters = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.Register()
			defer h.Unregister()
			s := h.NewShield()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ref := ProtectFrom(s, &src)
				st := pool.Hdr(ref.Slot()).State()
				if st == alloc.StateFree {
					t.Error("validated protection points at a freed node")
					return
				}
				s.Clear()
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		h := d.Register()
		defer h.Unregister()
		c := pool.NewCache()
		for i := 1; i <= iters; i++ {
			slot, n := pool.Alloc(c)
			n.key = int64(i)
			old := src.Swap(atomicx.MakeRef(slot, 0))
			pool.Hdr(old.Slot()).Retire()
			h.Retire(old.Slot(), pool)
		}
		close(stop)
	}()

	wg.Wait()
}

func TestOrphanAdoption(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil, WithScanThreshold(1000)) // keep batches local
	h1 := d.Register()

	slot, _ := pool.Alloc(cache)
	pool.Hdr(slot).Retire()
	h1.Retire(slot, pool)
	h1.Unregister() // leaves the retired node as an orphan

	h2 := d.Register()
	defer h2.Unregister()
	h2.Reclaim()
	if pool.Hdr(slot).State() != alloc.StateFree {
		t.Fatal("orphan was not adopted and reclaimed")
	}
}

func TestScanThresholdTriggersReclaim(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil, WithScanThreshold(8))
	h := d.Register()
	defer h.Unregister()

	for i := 0; i < 8; i++ {
		slot, _ := pool.Alloc(cache)
		pool.Hdr(slot).Retire()
		h.Retire(slot, pool)
	}
	if got := d.Stats().Reclaimed.Load(); got != 8 {
		t.Fatalf("reclaimed = %d, want 8 (batch threshold must trigger scan)", got)
	}
	if h.PendingRetired() != 0 {
		t.Fatalf("pending = %d, want 0", h.PendingRetired())
	}
}

func TestDoubleShieldSameSlot(t *testing.T) {
	pool := alloc.NewPool[node]()
	cache := pool.NewCache()
	d := NewDomain(nil, WithScanThreshold(1))
	h := d.Register()
	defer h.Unregister()

	slot, _ := pool.Alloc(cache)
	s1, s2 := h.NewShield(), h.NewShield()
	s1.ProtectSlot(slot)
	s2.ProtectSlot(slot)

	pool.Hdr(slot).Retire()
	h.Retire(slot, pool)
	s1.Clear()
	h.Reclaim()
	if pool.Hdr(slot).State() == alloc.StateFree {
		t.Fatal("node freed while second shield still protects it")
	}
	s2.Clear()
	h.Reclaim()
	if pool.Hdr(slot).State() != alloc.StateFree {
		t.Fatal("node not freed after all shields cleared")
	}
}
