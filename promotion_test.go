package hpbrcu

// Promotion audit: the decorator stack Register builds — pressureHandle
// (backpressure), optimisticAsGet (HHSList get swap), guardedHandle
// (lifecycle guard) — must keep promoting the optional handle interfaces
// (TryInserter, ContextHandle) and the optimistic get no matter how the
// wrappers compose. Interface embedding hides undeclared methods, so each
// wrap is a place promotion can silently break; these assertions and the
// per-decorator tests pin it.

import (
	"context"
	"testing"
	"time"
)

// Compile-time pins: the guard is the outermost wrap every caller sees,
// so it must carry both optional interfaces itself; the pressure wrap is
// where TryInsert originates; the map implementation must satisfy the
// full Map interface including the handle-free facade.
var (
	_ TryInserter   = (*guardedHandle)(nil)
	_ ContextHandle = (*guardedHandle)(nil)
	_ TryInserter   = pressureHandle{}
	_ Map           = (*mapImpl)(nil)
)

// ctxGetter and optimisticGetter mirror the structure-handle methods
// unwrapBase must keep reachable underneath the package wrappers.
type ctxGetter interface {
	GetCtx(ctx context.Context, key int64) (int64, bool, error)
}

type optimisticGetter interface {
	GetOptimistic(key int64) (int64, bool)
}

// exerciseHandle drives the promoted surface end to end on a fresh
// handle: TryInsert must insert, GetCtx must see the insert, and a
// cancelled context must surface its error instead of the value.
func exerciseHandle(t *testing.T, h MapHandle, key int64) {
	t.Helper()
	ti, ok := h.(TryInserter)
	if !ok {
		t.Fatal("handle lost TryInserter through the decorator stack")
	}
	if ok, err := ti.TryInsert(key, key*2); err != nil || !ok {
		t.Fatalf("TryInsert(%d) = %v, %v; want true, nil", key, ok, err)
	}
	ch, ok := h.(ContextHandle)
	if !ok {
		t.Fatal("handle lost ContextHandle through the decorator stack")
	}
	if v, ok, err := ch.GetCtx(context.Background(), key); err != nil || !ok || v != key*2 {
		t.Fatalf("GetCtx(%d) = %d, %v, %v; want %d, true, nil", key, v, ok, err, key*2)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok, err := ch.GetCtx(cancelled, key); err == nil || ok {
		t.Fatalf("GetCtx under cancelled ctx = ok=%v err=%v; want miss with the ctx error", ok, err)
	}
	if err := ch.BarrierCtx(context.Background()); err != nil {
		t.Fatalf("BarrierCtx: %v", err)
	}
}

func TestPromotionPlainGuard(t *testing.T) {
	m, err := NewHList(HPBRCU, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer Close(m, 5*time.Second)
	h := m.Register()
	g, ok := h.(*guardedHandle)
	if !ok {
		t.Fatalf("Register returned %T, want *guardedHandle", h)
	}
	if _, ok := g.base.(ctxGetter); !ok {
		t.Fatalf("guard base %T does not expose the structure GetCtx", g.base)
	}
	exerciseHandle(t, h, 11)
	h.Unregister()
}

func TestPromotionThroughPressureWrap(t *testing.T) {
	m, err := NewHList(HPBRCU, Config{
		Backpressure: BackpressureConfig{Enabled: true, Ceiling: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer Close(m, 5*time.Second)
	g := m.Register().(*guardedHandle)
	if _, ok := g.inner.(pressureHandle); !ok {
		t.Fatalf("backpressure map wrapped the handle in %T, want pressureHandle", g.inner)
	}
	// The pressure wrap embeds the MapHandle interface, which hides GetCtx;
	// unwrapBase must have peeled it so the guard still finds the method.
	if _, ok := g.base.(ctxGetter); !ok {
		t.Fatalf("unwrapBase failed to peel pressureHandle: base is %T", g.base)
	}
	exerciseHandle(t, g, 22)
	g.Unregister()
}

func TestPromotionThroughOptimisticWrap(t *testing.T) {
	m, err := NewHHSList(HPBRCU, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer Close(m, 5*time.Second)
	g := m.Register().(*guardedHandle)
	if _, ok := g.inner.(optimisticAsGet); !ok {
		t.Fatalf("HHSList wrapped the handle in %T, want optimisticAsGet", g.inner)
	}
	if _, ok := g.base.(optimisticGetter); !ok {
		t.Fatalf("unwrapBase failed to peel optimisticAsGet: base is %T", g.base)
	}
	if _, ok := g.base.(ctxGetter); !ok {
		t.Fatalf("optimistic wrap hid the structure GetCtx: base is %T", g.base)
	}
	exerciseHandle(t, g, 33)
	// The optimistic swap must still be in effect through the guard.
	if v, ok := g.Get(33); !ok || v != 66 {
		t.Fatalf("optimistic Get(33) = %d, %v; want 66, true", v, ok)
	}
	g.Unregister()
}

func TestPromotionThroughBothWraps(t *testing.T) {
	m, err := NewHHSList(HPBRCU, Config{
		Backpressure: BackpressureConfig{Enabled: true, Ceiling: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer Close(m, 5*time.Second)
	g := m.Register().(*guardedHandle)
	if _, ok := g.inner.(pressureHandle); !ok {
		t.Fatalf("outermost inner wrap is %T, want pressureHandle", g.inner)
	}
	if _, ok := g.base.(optimisticGetter); !ok {
		t.Fatalf("unwrapBase failed to peel both wraps: base is %T", g.base)
	}
	if _, ok := g.base.(ctxGetter); !ok {
		t.Fatalf("composed wraps hid the structure GetCtx: base is %T", g.base)
	}
	exerciseHandle(t, g, 44)
	g.Unregister()
}
