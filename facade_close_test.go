package hpbrcu_test

// The close-while-busy facade regression: an operation that acquired (or
// was acquiring) its pooled handle while Close ran concurrently must
// surface exactly one of two truths — it completed (err == nil, or a
// genuine result error), or the map closed under it (ErrClosed). In
// particular it must never report ErrHandleExhausted for a wait that
// really ended in shutdown: callers treat exhaustion as "retry later",
// which a closed map will never honour. Two layers enforce this — the
// pool's await re-checks the closed flag when its timer and the stop
// channel race, and the facade's checkout re-translates a post-Close
// ErrExhausted — and this test storms both from every facade entry
// point.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hpbrcu "github.com/smrgo/hpbrcu"
)

func TestFacadeCloseWhileBusy(t *testing.T) {
	const workers = 8
	for _, scheme := range []hpbrcu.Scheme{hpbrcu.RCU, hpbrcu.HPBRCU} {
		t.Run(scheme.String(), func(t *testing.T) {
			m, err := hpbrcu.NewHashMap(scheme, 64, hpbrcu.Config{
				// Ample pool: with 2× entries per worker and nanosecond
				// operations, a legitimate exhaustion cannot happen, so any
				// ErrHandleExhausted below is a mistranslated shutdown.
				Pool: hpbrcu.PoolConfig{Size: 2 * workers, AcquireTimeout: time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			var (
				wg       sync.WaitGroup
				stop     atomic.Bool
				ops      atomic.Int64
				rejected atomic.Int64
			)
			check := func(op string, err error) bool {
				switch {
				case err == nil:
					ops.Add(1)
					return true
				case errors.Is(err, hpbrcu.ErrClosed):
					rejected.Add(1)
					return false
				default:
					t.Errorf("%s during Close: %v (want nil or ErrClosed)", op, err)
					return false
				}
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ctx := context.Background()
					for i := int64(0); !stop.Load(); i++ {
						k := (int64(w)<<20 + i) % 256
						switch i % 6 {
						case 0:
							_, err := m.Insert(k, i)
							check("Insert", err)
						case 1:
							_, _, err := m.Get(k)
							check("Get", err)
						case 2:
							_, err := m.TryInsert(k, i)
							check("TryInsert", err)
						case 3:
							_, _, err := m.Remove(k)
							check("Remove", err)
						case 4:
							_, _, err := m.GetCtx(ctx, k)
							check("GetCtx", err)
						case 5:
							check("Barrier", m.Barrier())
						}
					}
				}(w)
			}
			time.Sleep(5 * time.Millisecond) // storm in full flight
			if err := hpbrcu.Close(m, time.Second); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Let the storm run a beat past Close so every worker issues at
			// least one operation against the closed map (schemes without a
			// domain close instantly).
			time.Sleep(2 * time.Millisecond)
			stop.Store(true)
			wg.Wait()
			if ops.Load() == 0 {
				t.Fatal("no facade operation ever completed before Close")
			}
			if rejected.Load() == 0 {
				t.Fatal("no in-flight operation ever observed the Close (storm never overlapped)")
			}
			// The deterministic tail: after Close has returned, every facade
			// path reports ErrClosed — not a pool error, not a latched panic.
			if _, _, err := m.Get(1); !errors.Is(err, hpbrcu.ErrClosed) {
				t.Fatalf("Get after Close = %v, want ErrClosed", err)
			}
			if _, err := m.TryInsert(1, 1); !errors.Is(err, hpbrcu.ErrClosed) {
				t.Fatalf("TryInsert after Close = %v, want ErrClosed", err)
			}
			if err := m.Barrier(); !errors.Is(err, hpbrcu.ErrClosed) {
				t.Fatalf("Barrier after Close = %v, want ErrClosed", err)
			}
			if snap := m.Stats().Snapshot(); snap.Unreclaimed != 0 {
				t.Fatalf("books unbalanced after Close: %d unreclaimed", snap.Unreclaimed)
			}
		})
	}
}
