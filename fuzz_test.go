package hpbrcu_test

// Native fuzz targets: each byte of input drives one operation against a
// structure and a reference model. `go test` executes the seed corpus on
// every run; `go test -fuzz=FuzzHMListModel` explores further. The
// allocator's lifecycle panics turn reclamation-protocol violations into
// crashes the fuzzer can minimize.

import (
	"testing"

	hpbrcu "github.com/smrgo/hpbrcu"
)

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0x00, 0x40, 0x80, 0x00, 0x40, 0x80})
	f.Add([]byte{255, 254, 253, 1, 2, 3, 128, 129, 130})
	big := make([]byte, 512)
	for i := range big {
		big[i] = byte(i*37 + 11)
	}
	f.Add(big)
}

// opByte decodes one fuzz byte: low 5 bits choose a key in [0,32), the
// next 2 bits choose the operation.
func runOpByte(h hpbrcu.MapHandle, model map[int64]int64, b byte) (ok bool, why string) {
	k := int64(b & 31)
	switch (b >> 5) & 3 {
	case 0, 1:
		_, in := model[k]
		_, got := h.Get(k)
		if got != in {
			return false, "Get disagrees with model"
		}
	case 2:
		_, in := model[k]
		if h.Insert(k, k*7) == in {
			return false, "Insert disagrees with model"
		}
		model[k] = k * 7
	default:
		want, in := model[k]
		v, got := h.Remove(k)
		if got != in || (got && v != want) {
			return false, "Remove disagrees with model"
		}
		delete(model, k)
	}
	return true, ""
}

func fuzzAgainstModel(f *testing.F, mk func() (hpbrcu.Map, error)) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := mk()
		if err != nil {
			t.Skip(err)
		}
		h := m.Register()
		defer h.Unregister()
		model := map[int64]int64{}
		for i, b := range data {
			if ok, why := runOpByte(h, model, b); !ok {
				t.Fatalf("op %d (byte %#x): %s", i, b, why)
			}
		}
	})
}

func FuzzHMListModel(f *testing.F) {
	fuzzAgainstModel(f, func() (hpbrcu.Map, error) {
		return hpbrcu.NewHMList(hpbrcu.HPBRCU, hpbrcu.Config{BackupPeriod: 3, BatchSize: 4, ForceThreshold: 1})
	})
}

func FuzzHListModel(f *testing.F) {
	fuzzAgainstModel(f, func() (hpbrcu.Map, error) {
		return hpbrcu.NewHList(hpbrcu.HPBRCU, hpbrcu.Config{BackupPeriod: 3, BatchSize: 4, ForceThreshold: 1})
	})
}

func FuzzSkipListModel(f *testing.F) {
	fuzzAgainstModel(f, func() (hpbrcu.Map, error) {
		return hpbrcu.NewSkipList(hpbrcu.HPBRCU, hpbrcu.Config{BackupPeriod: 3, BatchSize: 4, ForceThreshold: 1})
	})
}

func FuzzNMTreeModel(f *testing.F) {
	fuzzAgainstModel(f, func() (hpbrcu.Map, error) {
		return hpbrcu.NewNMTree(hpbrcu.HPBRCU, hpbrcu.Config{BatchSize: 4, ForceThreshold: 1})
	})
}

func FuzzVBRModel(f *testing.F) {
	fuzzAgainstModel(f, func() (hpbrcu.Map, error) {
		return hpbrcu.NewHHSList(hpbrcu.VBR, hpbrcu.Config{})
	})
}
